"""HTTP/1.1 front end over ``asyncio.start_server`` (stdlib only).

A deliberately small server — enough protocol to serve JSON clients and
the load harness, nothing more:

==========================  ===============================================
``POST /simulate``          one request object -> one response object
``POST /batch``             ``{"requests": [...]}`` -> ``{"responses":
                            [...]}``
``GET  /healthz``           liveness + queue depth + cache summary
``GET  /metrics``           JSON snapshot of the telemetry metrics registry
``POST /jobs``              submit a durable streaming-sweep job (202)
``GET  /jobs``              list known jobs
``GET  /jobs/<id>``         one job's lifecycle status
``GET  /jobs/<id>/stream``  durable JSONL results from ``?offset=N``
                            (record offset; count lines to page)
``POST /jobs/<id>/resume``  requeue an interrupted job
``DELETE /jobs/<id>``       cancel (stops at the next checkpoint)
==========================  ===============================================

Status mapping: validation failures are 400, admission rejections 429
(``Retry-After`` included), queued-deadline expiry 504, compute failure
500.  ``/batch`` always answers 200 with per-request statuses inside, so
one bad request cannot mask its batch-mates.  Connections are keep-alive
(HTTP/1.1 default) with an idle timeout; request bodies are capped.

The protocol plumbing (connection loop, framing, keep-alive reaping,
the jobs routes) lives in :class:`BaseHTTPServer` so other front ends —
the cluster coordinator and worker node in :mod:`repro.cluster` — reuse
it verbatim and only supply their own ``_route``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from dataclasses import replace

from .._version import __version__
from ..faults.injector import fire
from ..obs.promtext import prometheus_text, wants_prometheus, PROM_CONTENT_TYPE
from ..obs.trace import TRACE_HEADER, TraceContext, close_span, open_span
from .api import (
    ServiceValidationError, SimRequest, SimResponse, next_request_id,
    parse_request,
)
from .scheduler import ReductionService

__all__ = ["BaseHTTPServer", "ServiceHTTPServer"]

#: Largest accepted request body (a /batch of a few thousand requests).
MAX_BODY_BYTES = 4 << 20

#: Per-/batch cap: one HTTP client cannot occupy the whole admission queue.
MAX_BATCH_REQUESTS = 1024

#: Seconds an idle keep-alive connection may sit between requests.
IDLE_TIMEOUT_S = 60.0

#: Distinct request bodies whose parse result is memoized.
PARSE_CACHE_MAX = 4096


def _json_bytes(doc: Any) -> bytes:
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()


class _HTTPError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 410: "Gone", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class _RawBody:
    """A pre-encoded response body with its own Content-Type.

    Routes return JSON-serializable documents by default; the few that
    negotiate another representation (Prometheus text on ``/metrics``)
    wrap it in this.
    """

    __slots__ = ("content_type", "payload")

    def __init__(self, content_type: str, payload: bytes):
        self.content_type = content_type
        self.payload = payload


class BaseHTTPServer:
    """Protocol plumbing shared by every repro HTTP front end.

    Subclasses implement ``_route`` (and optionally the ``_on_start`` /
    ``_on_stop`` lifecycle hooks and ``_jobs_manager`` for the /jobs
    routes).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        reuse_port: bool = False,
    ):
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------------
    async def _on_start(self) -> None:
        """Hook: bring up whatever the routes serve (before binding)."""

    async def _on_stop(self) -> None:
        """Hook: tear down what ``_on_start`` brought up."""

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        await self._on_start()
        # backlog: hundreds of load-generator clients connect in the same
        # millisecond; the default backlog (100) drops SYNs, and the
        # retransmit timeout (~1 s) would dominate tail latency.
        # reuse_port: SO_REUSEPORT lets several shard processes listen on
        # one port and have the kernel balance connections across them
        # (see `repro serve --shards`).
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=1024,
            reuse_port=self.reuse_port or None,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._on_stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Idle reaping via one timer per connection instead of an
        # asyncio.wait_for per request: wait_for spawns a task + timer
        # every call, which dominates per-request overhead under load.
        loop = asyncio.get_running_loop()
        last_activity = loop.time()

        def _reap() -> None:
            nonlocal watchdog
            idle = loop.time() - last_activity
            if idle >= IDLE_TIMEOUT_S:
                writer.close()
            else:
                watchdog = loop.call_later(IDLE_TIMEOUT_S - idle, _reap)

        watchdog = loop.call_later(IDLE_TIMEOUT_S, _reap)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HTTPError as exc:
                    # Framing errors (oversized body, bad request line)
                    # leave the stream unsynchronized: answer and close.
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, False
                    )
                    break
                if request is None:  # client closed cleanly
                    break
                last_activity = loop.time()
                decision = fire("service.http")
                if decision is not None:
                    if decision.mode == "disconnect":
                        # Simulate the server side dying mid-exchange:
                        # hang up with no response at all.
                        break
                    if decision.mode == "slow":
                        await asyncio.sleep(
                            decision.delay_s
                            if decision.delay_s is not None else 0.05
                        )
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                try:
                    status, doc = await self._route(
                        method, path, headers, body
                    )
                except _HTTPError as exc:
                    status, doc = exc.status, {"error": str(exc)}
                except Exception as exc:  # never kill the connection loop
                    status, doc = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
                await self._write_response(writer, status, doc, keep_alive)
                last_activity = loop.time()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            watchdog.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        # One await for the whole header block (vs. a readline per line).
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        lines = blob.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HTTPError(400, f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for text in lines[1:]:
            if not text:
                continue
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"body of {length} bytes exceeds cap")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: Any,
        keep_alive: bool,
    ) -> None:
        if isinstance(doc, _RawBody):
            payload = doc.payload
            content_type = doc.content_type
        else:
            payload = _json_bytes(doc)
            content_type = "application/json"
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Server: repro-service/{__version__}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if status == 429:
            headers.append("Retry-After: 1")
        writer.write(
            ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + payload
        )
        await writer.drain()

    # -- routing --------------------------------------------------------------
    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any]:
        raise _HTTPError(404, f"no route for {path}")

    # -- durable jobs ---------------------------------------------------------
    def _jobs_manager(self) -> Any:
        raise _HTTPError(
            503, "jobs disabled (start the server with --jobs-dir)"
        )

    async def _route_jobs(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, Any]:
        """The job-lifecycle routes (see repro.jobs and docs/JOBS.md).

        Manager calls take locks and touch disk, so every one runs on
        the default thread pool — the event loop keeps serving
        ``/simulate`` while a submit recovers a large job directory.
        """
        from ..errors import SpecError

        manager = self._jobs_manager()
        loop = asyncio.get_running_loop()
        parts = [part for part in path.split("/") if part]
        if len(parts) == 1:  # /jobs
            if method == "POST":
                try:
                    from ..jobs import parse_job_spec

                    spec = parse_job_spec(self._decode(body))
                except SpecError as exc:
                    raise _HTTPError(400, str(exc)) from exc
                doc = await loop.run_in_executor(None, manager.submit, spec)
                return 202, doc
            if method == "GET":
                docs = await loop.run_in_executor(None, manager.list_jobs)
                return 200, {"jobs": docs}
            raise _HTTPError(405, "use POST /jobs or GET /jobs")
        job_id = parts[1]
        if len(parts) == 2:  # /jobs/<id>
            if method == "GET":
                doc = await loop.run_in_executor(None, manager.get, job_id)
            elif method == "DELETE":
                doc = await loop.run_in_executor(None, manager.cancel, job_id)
            else:
                raise _HTTPError(405, "use GET or DELETE /jobs/<id>")
            if doc is None:
                raise _HTTPError(404, f"no job {job_id}")
            return 200, doc
        if len(parts) == 3 and parts[2] == "stream":  # /jobs/<id>/stream
            if method != "GET":
                raise _HTTPError(405, "use GET /jobs/<id>/stream")
            offset = self._query_int(query, "offset", 0)
            limit = self._query_int(query, "limit", 4096)
            data = await loop.run_in_executor(
                None, manager.stream, job_id, offset, limit
            )
            if data is None:
                raise _HTTPError(404, f"no job {job_id}")
            return 200, _RawBody("application/x-ndjson", data)
        if len(parts) == 3 and parts[2] == "resume":  # /jobs/<id>/resume
            if method != "POST":
                raise _HTTPError(405, "use POST /jobs/<id>/resume")
            doc = await loop.run_in_executor(None, manager.resume, job_id)
            if doc is None:
                raise _HTTPError(404, f"no job {job_id}")
            return 202, doc
        raise _HTTPError(404, f"no route for {path}")

    @staticmethod
    def _query_int(query: str, name: str, default: int) -> int:
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == name:
                try:
                    parsed = int(value)
                except ValueError as exc:
                    raise _HTTPError(
                        400, f"query parameter {name} must be an integer"
                    ) from exc
                if parsed < 0:
                    raise _HTTPError(400, f"{name} must be >= 0")
                return parsed
        return default

    @staticmethod
    def _decode(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HTTPError(400, f"body is not valid JSON: {exc}") from exc


class ServiceHTTPServer(BaseHTTPServer):
    """Serves one :class:`ReductionService` instance over HTTP."""

    def __init__(
        self,
        service: ReductionService,
        host: str = "127.0.0.1",
        port: int = 8077,
        reuse_port: bool = False,
    ):
        super().__init__(host, port, reuse_port=reuse_port)
        self.service = service
        # Sweep replays repeat identical /simulate bodies thousands of
        # times; memoizing the validated parse by raw body bytes removes
        # json.loads + parse_request from the cache-hit path.  Values are
        # (frozen request, client-supplied-id?) — generated ids must stay
        # unique, so those are re-stamped per hit.
        self._parse_cache: Dict[bytes, Tuple[SimRequest, bool]] = {}

    async def _on_start(self) -> None:
        await self.service.start()

    async def _on_stop(self) -> None:
        await self.service.stop()

    # -- routing --------------------------------------------------------------
    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any]:
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "use GET /healthz")
            return 200, self.service.health()
        if path == "/health":
            if method != "GET":
                raise _HTTPError(405, "use GET /health")
            healthy, doc = self.service.slo_report()
            return (200 if healthy else 503), doc
        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "use GET /metrics")
            cache = self.service.executor.cache
            if cache is not None:
                # Mirror the cache's own counters (including the
                # self-healing ones) so chaos reports and dashboards
                # read one endpoint.
                registry = self.service.registry
                for name, value in (
                    ("hits", cache.hits), ("misses", cache.misses),
                    ("stores", cache.stores), ("evictions", cache.evictions),
                    ("checksum_failures", cache.checksum_failures),
                    ("quarantined", cache.quarantined),
                ):
                    registry.gauge(f"cache.{name}").set(float(value))
            if wants_prometheus(headers.get("accept", "")):
                text = prometheus_text(self.service.registry)
                return 200, _RawBody(PROM_CONTENT_TYPE, text.encode("utf-8"))
            return 200, {"metrics": self.service.registry.snapshot()}
        if path == "/simulate":
            if method != "POST":
                raise _HTTPError(405, "use POST /simulate")
            response = await self._simulate_body(body, headers)
            return response.http_status(), response.to_dict()
        if path == "/batch":
            if method != "POST":
                raise _HTTPError(405, "use POST /batch")
            return await self._simulate_batch(self._decode(body), headers)
        if path == "/jobs" or path.startswith("/jobs/"):
            return await self._route_jobs(method, path, query, body)
        raise _HTTPError(404, f"no route for {path}")

    def _jobs_manager(self) -> Any:
        manager = self.service.jobs
        if manager is None:
            raise _HTTPError(
                503, "jobs disabled (start the server with --jobs-dir)"
            )
        return manager

    async def _simulate_body(
        self, body: bytes, headers: Dict[str, str]
    ) -> SimResponse:
        cached = self._parse_cache.get(body)
        if cached is None:
            obj = self._decode(body)
            try:
                request = parse_request(
                    obj,
                    default_timeout_s=self.service.settings.default_timeout_s,
                )
            except ServiceValidationError:
                # shared error path
                return await self._simulate_one(obj, headers)
            explicit_id = isinstance(obj, dict) and "request_id" in obj
            if len(self._parse_cache) >= PARSE_CACHE_MAX:
                self._parse_cache.clear()  # steady workloads re-warm fast
            self._parse_cache[body] = (request, explicit_id)
        else:
            request, explicit_id = cached
            if not explicit_id:
                request = replace(request, request_id=next_request_id())
        return await self._submit(request, headers)

    async def _submit(
        self, request: SimRequest, headers: Dict[str, str]
    ) -> SimResponse:
        """Submit, minting/propagating a trace context when sampling.

        The context rides the ``x-repro-trace`` *header* (never the
        JSON body — the API rejects unknown body fields, and the parse
        memo above stays valid because identical bodies parse the same
        regardless of tracing).  A sampled request gets an
        ``http.request`` root span here; everything below hangs off it.
        """
        service = self.service
        if not service.tracing:
            return await service.submit(request)
        ctx = service.trace_for(
            request, TraceContext.from_header(headers.get(TRACE_HEADER))
        )
        if ctx is None:
            return await service.submit(request)
        hspan = open_span(
            "http.request",
            category="service",
            parent_id=ctx.parent_id,
            trace_id=ctx.trace_id,
            request_id=request.request_id,
        )
        try:
            response = await service.submit(
                request, trace=ctx.child(hspan.span_id)
            )
        except BaseException:
            close_span(hspan, error=True)
            raise
        close_span(hspan, status=response.status)
        return response

    async def _simulate_one(
        self, obj: Any, headers: Dict[str, str]
    ) -> SimResponse:
        try:
            request = parse_request(
                obj, default_timeout_s=self.service.settings.default_timeout_s
            )
        except ServiceValidationError as exc:
            self.service.registry.counter(
                "service.rejected", reason="invalid_request"
            ).add(1)
            request_id = ""
            if isinstance(obj, dict):
                request_id = str(obj.get("request_id", ""))[:64]
            return SimResponse.error(request_id, "invalid_request", str(exc))
        return await self._submit(request, headers)

    async def _simulate_batch(
        self, obj: Any, headers: Dict[str, str]
    ) -> Tuple[int, Any]:
        if not isinstance(obj, dict) or not isinstance(
            obj.get("requests"), list
        ):
            raise _HTTPError(400, "/batch body must be {'requests': [...]}")
        entries = obj["requests"]
        if len(entries) > MAX_BATCH_REQUESTS:
            raise _HTTPError(
                413, f"batch of {len(entries)} exceeds {MAX_BATCH_REQUESTS}"
            )
        responses = await asyncio.gather(
            *(self._simulate_one(entry, headers) for entry in entries)
        )
        return 200, {"responses": [r.to_dict() for r in responses]}
