"""Micro-batching: coalesce duplicates, group compatible requests.

The batcher drains the admission queue into short time-boxed batches
(first request opens a window of ``window_s`` seconds; the batch closes
when the window expires or ``max_batch`` requests are gathered — the
classic latency/throughput knob).  Within a batch it

* **coalesces** requests with identical fingerprints: one computation,
  every waiter gets the same record (``source="coalesced"`` for the
  riders), and
* **groups** the unique fingerprints by task kind (``gpu_point`` vs
  ``coexec_sweep``) so each dispatched batch is homogeneous — exactly
  the shape :meth:`~repro.sweep.executor.SweepExecutor.run` fans out
  over its process pool.

Requests whose deadline expired while queued are completed with an
explicit ``deadline_exceeded`` rejection here, before any compute is
spent on them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional

from ..telemetry.metrics import MetricsRegistry
from .admission import PendingRequest
from .api import SimResponse

__all__ = ["MicroBatch", "MicroBatcher"]

#: Batch-size histogram buckets (requests per dispatched batch).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class MicroBatch:
    """One homogeneous batch: unique payloads plus their waiters."""

    kind: str
    #: fingerprint key -> every pending request that wants this result,
    #: in arrival order (the first is the "owner", the rest coalesced).
    entries: Dict[str, List[PendingRequest]] = field(default_factory=dict)

    @property
    def unique(self) -> int:
        return len(self.entries)

    @property
    def waiters(self) -> int:
        return sum(len(v) for v in self.entries.values())


DispatchFn = Callable[[MicroBatch], Awaitable[None]]


class MicroBatcher:
    """Pulls admitted requests and dispatches coalesced micro-batches."""

    def __init__(
        self,
        queue: "asyncio.Queue[PendingRequest]",
        dispatch: DispatchFn,
        max_batch: int = 64,
        window_s: float = 0.002,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.queue = queue
        self.dispatch = dispatch
        self.max_batch = max_batch
        self.window_s = window_s
        self.registry = registry or MetricsRegistry()
        self._task: Optional[asyncio.Task] = None
        self._inflight: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-service-batcher"
            )

    async def stop(self) -> None:
        """Stop pulling; waits for already-dispatched batches to finish."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)

    async def drain(self) -> None:
        """Wait until the queue is empty and every dispatch completed."""
        while self.queue.qsize() or self._inflight:
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)
            else:
                await asyncio.sleep(0)

    # -- the pull loop --------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self.queue.get()
            batch = [first]
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window closed; still sweep anything already queued.
                    while (
                        len(batch) < self.max_batch and self.queue.qsize()
                    ):
                        batch.append(self.queue.get_nowait())
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self.queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._flush(batch, loop.time())

    def _flush(self, batch: List[PendingRequest], now: float) -> None:
        groups: Dict[str, MicroBatch] = {}
        coalesced = 0
        for pending in batch:
            if pending.future.done():
                continue  # caller timed out / disconnected meanwhile
            if pending.expired(now):
                pending.future.set_result(
                    SimResponse.rejected(
                        pending.request.request_id, "deadline_exceeded"
                    )
                )
                self.registry.counter(
                    "service.rejected", reason="deadline_exceeded"
                ).add(1)
                continue
            group = groups.setdefault(pending.kind, MicroBatch(pending.kind))
            waiters = group.entries.setdefault(pending.key, [])
            if waiters:
                coalesced += 1
            waiters.append(pending)
        if coalesced:
            self.registry.counter("service.coalesced").add(coalesced)
        for group in groups.values():
            self.registry.counter("service.batches").add(1)
            self.registry.histogram(
                "service.batch_size", boundaries=BATCH_BUCKETS
            ).observe(group.waiters)
            task = asyncio.get_running_loop().create_task(
                self.dispatch(group)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
