"""Micro-batching: coalesce duplicates, group compatible requests.

The batcher drains the admission queue into short time-boxed batches
(first request opens a window of ``window_s`` seconds; the batch closes
when the window expires or ``max_batch`` requests are gathered — the
classic latency/throughput knob).  Within a batch it

* **coalesces** requests with identical fingerprints: one computation,
  every waiter gets the same record (``source="coalesced"`` for the
  riders), and
* **groups** the unique fingerprints by task kind (``gpu_point`` vs
  ``coexec_sweep``) so each dispatched batch is homogeneous — exactly
  the shape :meth:`~repro.sweep.executor.SweepExecutor.run` fans out
  over its process pool.

Requests whose deadline expired while queued are completed with an
explicit ``deadline_exceeded`` rejection here, before any compute is
spent on them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional

from ..obs.trace import close_span, open_span
from ..telemetry.metrics import MetricsRegistry
from .admission import PendingRequest
from .api import SimResponse

__all__ = ["MicroBatch", "MicroBatcher"]

#: Batch-size histogram buckets (requests per dispatched batch).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class MicroBatch:
    """One homogeneous batch: unique payloads plus their waiters."""

    kind: str
    #: fingerprint key -> every pending request that wants this result,
    #: in arrival order (the first is the "owner", the rest coalesced).
    entries: Dict[str, List[PendingRequest]] = field(default_factory=dict)
    #: Span id of this batch's ``service.batch`` span when tracing; the
    #: scheduler parents its dispatch span under it.
    trace_span_id: Optional[str] = None
    #: Trace ids of every sampled request that joined the batch.
    trace_ids: tuple = ()

    @property
    def unique(self) -> int:
        return len(self.entries)

    @property
    def waiters(self) -> int:
        return sum(len(v) for v in self.entries.values())


DispatchFn = Callable[[MicroBatch], Awaitable[None]]


class MicroBatcher:
    """Pulls admitted requests and dispatches coalesced micro-batches."""

    def __init__(
        self,
        queue: "asyncio.Queue[PendingRequest]",
        dispatch: DispatchFn,
        max_batch: int = 64,
        window_s: float = 0.002,
        registry: Optional[MetricsRegistry] = None,
        trace: bool = False,
    ):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.queue = queue
        self.dispatch = dispatch
        self.max_batch = max_batch
        self.window_s = window_s
        self.registry = registry or MetricsRegistry()
        #: When on, batches that gathered sampled requests get a
        #: ``service.batch`` span linking back (flow_in) to each one.
        self.trace = trace
        self._task: Optional[asyncio.Task] = None
        self._inflight: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-service-batcher"
            )

    async def stop(self) -> None:
        """Stop pulling; waits for already-dispatched batches to finish."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)

    async def drain(self) -> None:
        """Wait until the queue is empty and every dispatch completed."""
        while self.queue.qsize() or self._inflight:
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)
            else:
                await asyncio.sleep(0)

    # -- the pull loop --------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self.queue.get()
            batch = [first]
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window closed; still sweep anything already queued.
                    while (
                        len(batch) < self.max_batch and self.queue.qsize()
                    ):
                        batch.append(self.queue.get_nowait())
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self.queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._flush(batch, loop.time())

    def _flush(self, batch: List[PendingRequest], now: float) -> None:
        groups: Dict[str, MicroBatch] = {}
        coalesced = 0
        for pending in batch:
            if pending.future.done():
                continue  # caller timed out / disconnected meanwhile
            if pending.expired(now):
                pending.future.set_result(
                    SimResponse.rejected(
                        pending.request.request_id, "deadline_exceeded"
                    )
                )
                self.registry.counter(
                    "service.rejected", reason="deadline_exceeded"
                ).add(1)
                continue
            group = groups.setdefault(pending.kind, MicroBatch(pending.kind))
            waiters = group.entries.setdefault(pending.key, [])
            if waiters:
                coalesced += 1
            waiters.append(pending)
        if coalesced:
            self.registry.counter("service.coalesced").add(coalesced)
        for group in groups.values():
            self.registry.counter("service.batches").add(1)
            self.registry.histogram(
                "service.batch_size", boundaries=BATCH_BUCKETS
            ).observe(group.waiters)
            coro = self.dispatch(group)
            if self.trace:
                coro = self._traced_dispatch(group, coro)
            task = asyncio.get_running_loop().create_task(coro)
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _traced_dispatch(self, group: MicroBatch, coro) -> None:
        """Wrap one dispatch in a ``service.batch`` span with links.

        The batch is the coalescing point of the trace graph: one span,
        with a flow link *in* from every sampled request that joined —
        a batch of N requests renders as N arrows converging on it.
        Batches with no sampled waiters dispatch untraced.
        """
        links = []
        for waiters in group.entries.values():
            for pending in waiters:
                ctx = pending.extra.get("trace")
                if ctx is not None:
                    links.append(ctx)
        if not links:
            await coro
            return
        group.trace_ids = tuple(ctx.trace_id for ctx in links)
        span = open_span(
            "service.batch",
            category="service",
            kind=group.kind,
            unique=group.unique,
            waiters=group.waiters,
            flow_in=list(group.trace_ids),
        )
        group.trace_span_id = span.span_id
        try:
            await coro
        except BaseException:
            close_span(span, error=True)
            raise
        close_span(span)
