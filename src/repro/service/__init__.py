"""repro.service — reduction-as-a-service (async, batched, deduped).

The service turns the one-shot CLI reproduction into a shared simulation
backend: clients POST reduction-simulation requests (structured config
or OpenMP directive source) and get predicted time/bandwidth plus trace
summaries back.  The pipeline is

    HTTP front end -> admission control -> micro-batcher -> scheduler
    (``http.py``)     (``admission.py``)   (``batcher.py``)  (``scheduler.py``)

with the scheduler resolving fingerprints against the persistent sweep
:class:`~repro.sweep.result_cache.ResultCache`, in-flight computations,
and finally the PR-1 :class:`~repro.sweep.executor.SweepExecutor`
process pool.  ``loadgen.py`` is the client side: a concurrent load
generator with latency-percentile reduction.

Everything is stdlib-only (``asyncio`` + ``json``) and off by default —
nothing here runs unless ``repro serve`` / ``repro loadtest`` or the
library API below is used explicitly.  See docs/SERVICE.md.
"""

from .admission import AdmissionController, PendingRequest, TokenBucket
from .api import (
    ServiceValidationError,
    SimRequest,
    SimResponse,
    config_from_directive,
    parse_request,
    summarize_record,
)
from .batcher import MicroBatch, MicroBatcher
from .http import ServiceHTTPServer
from .loadgen import LoadReport, build_preset, percentile, run_load
from .scheduler import ReductionService, Scheduler, ServiceSettings

__all__ = [
    "AdmissionController",
    "LoadReport",
    "MicroBatch",
    "MicroBatcher",
    "PendingRequest",
    "ReductionService",
    "Scheduler",
    "ServiceHTTPServer",
    "ServiceSettings",
    "ServiceValidationError",
    "SimRequest",
    "SimResponse",
    "TokenBucket",
    "build_preset",
    "config_from_directive",
    "parse_request",
    "percentile",
    "run_load",
    "summarize_record",
]
