"""Scheduler + service facade: cache read-through, dedupe, retries.

The :class:`Scheduler` turns a :class:`~repro.service.batcher.MicroBatch`
into resolved responses, in three tiers:

1. **In-flight dedupe** — a fingerprint already being computed (by an
   earlier batch) is joined, not recomputed; the rider resolves when the
   owner does (``source="coalesced"``).
2. **Cache read-through** — fingerprints present in the persistent
   :class:`~repro.sweep.result_cache.ResultCache` resolve immediately
   (``source="cache"``); this is the path that must stay inside the
   service's p99 latency budget, and it is shared with the CLI sweep
   cache, so a ``repro sweep`` run pre-warms the service.
3. **Compute** — remaining fingerprints go to the PR-1
   :class:`~repro.sweep.executor.SweepExecutor` (process-pool fan-out)
   on a dispatch thread, with bounded retry-with-jitter around worker
   failure and an optional *hedged* second attempt
   (``hedge_delay_s``) racing a straggling primary.  Results are
   persisted by the executor's own write path, so every other tier
   benefits next time.

Compute failures (retry exhaustion, or points the supervised pool
resolved to explicit failure records) feed a
:class:`~repro.faults.breaker.CircuitBreaker`; while it is open — or
when the admission queue saturates — the service **degrades
gracefully**: compute-path requests get an immediate closed-form
analytic estimate (:func:`~repro.faults.degrade.analytic_estimate`)
flagged ``degraded: true`` instead of a 5xx or a doomed queue slot.
Cache hits keep being served from cache throughout.

:class:`ReductionService` wires admission -> batcher -> scheduler into
one object with ``start``/``submit``/``stop``; the HTTP front end and
the in-process test/benchmark harnesses both sit on top of it.
"""

from __future__ import annotations

import asyncio
import platform
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .._version import __version__
from ..core.machine import Machine
from ..errors import ReproError
from ..faults.breaker import CircuitBreaker
from ..faults.degrade import analytic_estimate
from ..faults.injector import fire
from ..obs.slo import SLOEngine, parse_slo_config
from ..obs.trace import TraceContext, close_span, mint_context, open_span
from ..obs.tsdb import TimeSeriesStore
from ..sweep.executor import SweepExecutor
from ..sweep.result_cache import open_result_cache
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.state import get_telemetry
from .admission import QUEUE_FULL, AdmissionController, PendingRequest
from .api import SimRequest, SimResponse, summarize_record
from .batcher import MicroBatch, MicroBatcher

__all__ = ["ServiceSettings", "Scheduler", "ReductionService"]

#: Latency histogram buckets (seconds): 100 us .. 30 s.
LATENCY_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 30.0
)


@dataclass(frozen=True)
class ServiceSettings:
    """Deployment knobs for one service instance (see docs/SERVICE.md)."""

    max_queue: int = 256
    rate_limit: Optional[float] = None  # requests/second/client; None = off
    burst: Optional[int] = None  # bucket capacity; None = max(1, rate_limit)
    max_batch: int = 64
    batch_window_s: float = 0.002
    default_timeout_s: Optional[float] = 30.0
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    retry_jitter_s: float = 0.05
    retry_seed: int = 0
    dispatch_threads: int = 1
    degrade: bool = True
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    hedge_delay_s: Optional[float] = None  # None = hedged retry off
    #: Distributed-tracing sample rate in [0, 1]; 0 = tracing off.
    #: Requires telemetry to be enabled (``repro serve --trace-sample``
    #: flips it on) — the decision per request is deterministic from the
    #: request fingerprint (see repro.obs.trace).
    trace_sample: float = 0.0
    #: Seconds between tsdb frames; 0 = continuous monitoring off.
    tsdb_interval_s: float = 0.0
    #: Ring capacity of the tsdb (frames retained).
    tsdb_capacity: int = 600
    #: SLO objectives: None = defaults, else inline JSON or a file path
    #: (see repro.obs.slo.parse_slo_config).  Only read when the tsdb
    #: is on — the SLO engine evaluates over its frames.
    slo_config: Optional[str] = None
    #: Directory for durable streaming-sweep jobs (``POST /jobs``);
    #: None = the job routes answer 503 (``repro serve --jobs-dir``).
    jobs_dir: Optional[str] = None
    #: Concurrent background jobs the in-service manager runs.
    jobs_max_running: int = 1


class Scheduler:
    """Resolves micro-batches against cache, in-flight work, and compute."""

    def __init__(
        self,
        executor: SweepExecutor,
        settings: ServiceSettings,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.executor = executor
        self.settings = settings
        self.registry = registry or MetricsRegistry()
        self._rng = random.Random(settings.retry_seed)
        self.breaker = CircuitBreaker(
            name="service",
            failure_threshold=settings.breaker_threshold,
            cooldown_s=settings.breaker_cooldown_s,
            registry=self.registry,
        )
        self._pool = ThreadPoolExecutor(
            # One spare thread so a hedge can run while the primary is
            # still occupying its dispatch slot.
            max_workers=max(1, settings.dispatch_threads)
            + (1 if settings.hedge_delay_s is not None else 0),
            thread_name_prefix="repro-service-dispatch",
        )
        #: fingerprint -> future resolving to the computed record.
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: (kind, payload) -> fingerprint.  SHA-256 over canonical JSON
        #: costs ~40 us; replayed sweep points hit this dict instead.
        self._key_cache: Dict[tuple, str] = {}

    def cache_key(self, kind: str, payload: tuple) -> str:
        memo_key = (kind, payload)
        try:
            cached = self._key_cache.get(memo_key)
        except TypeError:  # unhashable payload: compute every time
            return self.executor.cache_key(kind, payload)
        if cached is None:
            cached = self.executor.cache_key(kind, payload)
            if len(self._key_cache) < 65536:
                self._key_cache[memo_key] = cached
        return cached

    # -- batch resolution -----------------------------------------------------
    async def dispatch(self, batch: MicroBatch) -> None:
        """Resolve every waiter in *batch*; never raises."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        joined: List[Tuple[str, "asyncio.Future"]] = []
        to_compute: List[str] = []
        for key, waiters in batch.entries.items():
            inflight = self._inflight.get(key)
            if inflight is not None:
                joined.append((key, inflight))
                self.registry.counter("service.inflight_joined").add(
                    len(waiters)
                )
                continue
            cached = self.executor.cache.get(key) if self.executor.cache else None
            if cached is not None:
                self.registry.counter("service.cache_hits").add(len(waiters))
                self._resolve(batch.entries[key], cached, "cache", started)
                continue
            to_compute.append(key)
        if to_compute:
            record_futures = {
                key: loop.create_future() for key in to_compute
            }
            self._inflight.update(record_futures)
            try:
                await self._compute(batch, to_compute, started)
            finally:
                for key in to_compute:
                    future = self._inflight.pop(key, None)
                    if future is not None and not future.done():
                        future.cancel()
        for key, inflight in joined:
            try:
                record = await asyncio.shield(inflight)
            except (asyncio.CancelledError, Exception):
                self._fail(
                    batch.entries[key],
                    "compute_failed",
                    "the computation this request coalesced onto failed",
                )
                continue
            self._resolve(batch.entries[key], record, "coalesced", started)

    def _traced_run(
        self,
        kind: str,
        payloads: List[tuple],
        parent_id: str,
        trace_ids: tuple,
    ) -> List[dict]:
        """Executor run wrapped in a ``scheduler.dispatch`` span.

        Runs *on the dispatch thread*, so the span sits on that thread's
        stack: the executor's ``sweep.stage`` span nests under it
        naturally, and worker spans shipped back re-parent below the
        stage — stitching the cross-thread (and cross-process) tree
        under the batch span named by *parent_id*.
        """
        recorder = get_telemetry().recorder
        with recorder.span(
            "scheduler.dispatch",
            category="service",
            parent_id=parent_id,
            kind=kind,
            points=len(payloads),
            trace_ids=list(trace_ids),
        ):
            return self.executor.run(kind, payloads, f"service-{kind}")

    async def _run_dispatch(
        self, loop: "asyncio.AbstractEventLoop", kind: str,
        payloads: List[tuple], batch: Optional[MicroBatch] = None,
    ) -> List[dict]:
        """One dispatch to the executor, optionally hedged.

        With ``hedge_delay_s`` set, a primary that has not answered
        within the delay races a second identical attempt; the first
        to finish wins (measurements are pure functions of the point,
        so either result is correct).  The loser's outcome is consumed
        and discarded.
        """
        trace_span_id = batch.trace_span_id if batch is not None else None

        def run() -> "asyncio.Future":
            if trace_span_id is not None and get_telemetry().enabled:
                return loop.run_in_executor(
                    self._pool,
                    self._traced_run,
                    kind,
                    payloads,
                    trace_span_id,
                    batch.trace_ids,
                )
            return loop.run_in_executor(
                self._pool,
                self.executor.run,
                kind,
                payloads,
                f"service-{kind}",
            )

        if self.settings.hedge_delay_s is None:
            return await run()
        primary = asyncio.ensure_future(run())
        try:
            return await asyncio.wait_for(
                asyncio.shield(primary), self.settings.hedge_delay_s
            )
        except asyncio.TimeoutError:
            pass
        self.registry.counter("service.hedges").add(1)
        hedge = asyncio.ensure_future(run())
        done, pending = await asyncio.wait(
            {primary, hedge}, return_when=asyncio.FIRST_COMPLETED
        )
        winner = done.pop()
        if winner is hedge:
            self.registry.counter("service.hedge_wins").add(1)
        for leftover in done | pending:
            # The loser runs to completion on its thread; swallow its
            # eventual outcome so nothing warns about an unretrieved
            # exception.
            leftover.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
        return winner.result()

    async def _compute(
        self, batch: MicroBatch, keys: List[str], started: float
    ) -> None:
        loop = asyncio.get_running_loop()
        payloads = [batch.entries[key][0].payload for key in keys]
        attempt = 0
        while True:
            try:
                decision = fire("scheduler.dispatch")
                if decision is not None:
                    if decision.mode == "slow":
                        await asyncio.sleep(
                            decision.delay_s
                            if decision.delay_s is not None else 0.05
                        )
                    elif decision.mode == "error":
                        raise RuntimeError("injected dispatch failure")
                    elif decision.mode == "timeout":
                        await asyncio.sleep(
                            decision.delay_s
                            if decision.delay_s is not None else 0.1
                        )
                        raise asyncio.TimeoutError(
                            "injected dispatch timeout"
                        )
                records = await self._run_dispatch(
                    loop, batch.kind, payloads, batch
                )
                break
            except Exception as exc:
                if attempt >= self.settings.max_retries:
                    self.registry.counter("service.errors").add(len(keys))
                    self.breaker.record_failure(loop.time())
                    for key in keys:
                        self._fail(
                            batch.entries[key],
                            "compute_failed",
                            f"{type(exc).__name__}: {exc}",
                            retries=attempt,
                        )
                    return
                attempt += 1
                self.registry.counter("service.retries").add(1)
                delay = (
                    self.settings.retry_backoff_s * (2 ** (attempt - 1))
                    + self._rng.uniform(0, self.settings.retry_jitter_s)
                )
                await asyncio.sleep(delay)
        self.registry.counter("service.computed").add(len(keys))
        now = loop.time()
        for key, record in zip(keys, records):
            inflight = self._inflight.get(key)
            if isinstance(record, dict) and record.get("failed"):
                # The supervised pool quarantined or timed this point
                # out: an explicit failure, never served as ok (and
                # never cached — the executor already skipped it).
                self.registry.counter("service.failed_points").add(1)
                self.breaker.record_failure(now)
                if inflight is not None and not inflight.done():
                    inflight.cancel()
                self._fail(
                    batch.entries[key],
                    "compute_failed",
                    str(record.get("error") or "sweep point failed"),
                    retries=attempt,
                )
                continue
            self.breaker.record_success(now)
            if inflight is not None and not inflight.done():
                inflight.set_result(record)
            self._resolve(
                batch.entries[key], record, "computed", started,
                retries=attempt,
            )

    # -- waiter resolution ----------------------------------------------------
    def _resolve(
        self,
        waiters: List[PendingRequest],
        record: dict,
        source: str,
        dispatch_started: float,
        retries: int = 0,
    ) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        for i, pending in enumerate(waiters):
            if pending.future.done():
                continue
            # Within one batch only the first waiter "computed"; the rest
            # coalesced onto it.  Cache hits serve every waiter equally.
            waiter_source = (
                source if (i == 0 or source == "cache") else "coalesced"
            )
            latency = now - pending.enqueued_at
            self.registry.histogram(
                "service.latency_seconds",
                boundaries=LATENCY_BUCKETS,
                source=waiter_source,
            ).observe(latency)
            self.registry.counter("service.completed", status="ok").add(1)
            pending.future.set_result(
                SimResponse(
                    status="ok",
                    request_id=pending.request.request_id,
                    fingerprint=pending.key,
                    source=waiter_source,
                    result=summarize_record(pending.request, record),
                    queue_seconds=round(
                        dispatch_started - pending.enqueued_at, 9
                    ),
                    service_seconds=round(latency, 9),
                    retries=retries,
                )
            )

    def _fail(
        self,
        waiters: List[PendingRequest],
        reason: str,
        message: str,
        retries: int = 0,
    ) -> None:
        self.registry.counter("service.completed", status="error").add(
            len(waiters)
        )
        for pending in waiters:
            if not pending.future.done():
                pending.future.set_result(
                    SimResponse(
                        status="error",
                        request_id=pending.request.request_id,
                        reason=reason,
                        result={"message": message},
                        retries=retries,
                    )
                )

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ReductionService:
    """Admission -> micro-batcher -> scheduler, behind one async facade.

    Parameters
    ----------
    machine:
        The simulated node requests are evaluated against.
    executor:
        A configured :class:`SweepExecutor`; built from *machine* (with
        the default persistent cache) when omitted.  ``workers=1`` keeps
        every result byte-identical to the direct CLI path.
    settings:
        Deployment knobs; see :class:`ServiceSettings`.
    registry:
        Metrics sink; defaults to the process-global telemetry registry
        so ``/metrics`` and ``repro profile`` see service counters.
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        executor: Optional[SweepExecutor] = None,
        settings: Optional[ServiceSettings] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.machine = machine or Machine()
        self.settings = settings or ServiceSettings()
        self.registry = registry or get_telemetry().registry
        if executor is None:
            executor = SweepExecutor(
                self.machine,
                cache=open_result_cache(self.machine.config.sweep_cache_dir),
            )
        self.executor = executor
        self.scheduler = Scheduler(executor, self.settings, self.registry)
        self.admission = AdmissionController(
            max_queue=self.settings.max_queue,
            rate_limit=self.settings.rate_limit,
            burst=self.settings.burst,
            registry=self.registry,
        )
        # Tracing needs both the knob and the telemetry layer: with
        # telemetry off there is no recorder to hold the spans.
        self._tracing = (
            self.settings.trace_sample > 0 and get_telemetry().enabled
        )
        if self._tracing:
            # Traced service runs keep the slab fast path: the trace
            # contract is the request tree (batch -> dispatch -> stage
            # -> worker -> slab.evaluate), not per-point scalar spans.
            self.executor.trace_slab = True
        self.batcher = MicroBatcher(
            self.admission.queue,
            self.scheduler.dispatch,
            max_batch=self.settings.max_batch,
            window_s=self.settings.batch_window_s,
            registry=self.registry,
            trace=self._tracing,
        )
        # Continuous monitoring: a tsdb sampling loop plus the SLO
        # engine over it, both off unless tsdb_interval_s > 0.
        self.tsdb: Optional[TimeSeriesStore] = None
        self.slo: Optional[SLOEngine] = None
        if self.settings.tsdb_interval_s > 0:
            self.tsdb = TimeSeriesStore(
                self.registry,
                capacity=self.settings.tsdb_capacity,
                interval_s=self.settings.tsdb_interval_s,
            )
            self.slo = SLOEngine(
                self.tsdb, parse_slo_config(self.settings.slo_config)
            )
        self._sampler_task: Optional["asyncio.Task"] = None
        # Scrape attribution: who/what produced these numbers.
        self.registry.gauge(
            "build_info",
            version=__version__,
            python=platform.python_version(),
            machine=self.executor.machine_fingerprint[:12],
        ).set(1.0)
        self._started = False
        # Hot-path instrument handles, resolved once: registry lookups
        # sort label tuples and take a lock, which shows up at load.
        self._c_requests = self.registry.counter("service.requests")
        self._c_cache_hits = self.registry.counter("service.cache_hits")
        self._c_ok = self.registry.counter("service.completed", status="ok")
        self._c_err = self.registry.counter(
            "service.completed", status="error"
        )
        self._h_cache_latency = self.registry.histogram(
            "service.latency_seconds",
            boundaries=LATENCY_BUCKETS,
            source="cache",
        )
        #: fingerprint -> summarized result document.  The summary is a
        #: pure function of fields the fingerprint already hashes, so
        #: repeats of a point can share it.
        self._summary_cache: Dict[str, Dict[str, Any]] = {}
        #: Lazy durable-jobs manager (see the ``jobs`` property).
        self._jobs: Optional[Any] = None

    @property
    def jobs(self) -> Optional[Any]:
        """The durable-jobs manager, or ``None`` when jobs are disabled.

        Built lazily on first use (import of :mod:`repro.jobs` deferred:
        that package imports the sweep/verify layers and would cycle at
        module level).  Shares the service's machine and persistent
        result cache, so job points and ``/simulate`` traffic warm each
        other.
        """
        if self.settings.jobs_dir is None:
            return None
        if self._jobs is None:
            from ..jobs import JobManager

            self._jobs = JobManager(
                self.settings.jobs_dir,
                self.machine,
                cache=self.executor.cache,
                max_running=self.settings.jobs_max_running,
            )
        return self._jobs

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        self.batcher.start()
        if self.tsdb is not None and self._sampler_task is None:
            self.tsdb.sample()  # base frame: windowed deltas start here
            self._sampler_task = asyncio.get_running_loop().create_task(
                self._sample_loop(), name="repro-obs-tsdb"
            )
        self._started = True

    async def _sample_loop(self) -> None:
        while True:
            await asyncio.sleep(self.settings.tsdb_interval_s)
            self.tsdb.sample()

    async def stop(self) -> None:
        """Graceful: stop admitting, drain the queue, stop the batcher."""
        self.admission.close()
        if self._jobs is not None:
            # Cancel-at-next-checkpoint, then join: the durable prefix
            # of every running job stays resumable after restart.
            await asyncio.get_running_loop().run_in_executor(
                None, self._jobs.shutdown
            )
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._started:
            await self.batcher.drain()
            await self.batcher.stop()
        self.scheduler.shutdown()
        self._started = False

    # -- tracing --------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """Whether this instance samples distributed traces."""
        return self._tracing

    def trace_for(
        self,
        request: SimRequest,
        incoming: Optional[TraceContext] = None,
    ) -> Optional[TraceContext]:
        """The context this request should carry, or ``None`` (unsampled).

        An *incoming* context (from the ``x-repro-trace`` header) wins:
        its sampling bit is honored either way, so an upstream that
        decided to trace keeps its trace id here.  Without one, the
        decision hashes the request fingerprint against
        ``trace_sample`` — deterministic, so repeated runs trace the
        same requests.
        """
        if not self._tracing:
            return None
        if incoming is not None:
            return incoming if incoming.sampled else None
        try:
            kind, payload = request.payload()
            key = self.scheduler.cache_key(kind, payload)
        except ReproError:
            return None  # the untraced path will produce the error
        return mint_context(
            key, request.request_id, self.settings.trace_sample
        )

    # -- the front door -------------------------------------------------------
    async def submit(
        self,
        request: SimRequest,
        trace: Optional[TraceContext] = None,
    ) -> SimResponse:
        """Run one request through the full pipeline; always responds.

        Admission rejections come back immediately as explicit
        ``rejected`` responses; admitted requests resolve when their
        batch does (every path through the scheduler resolves the
        future, so a submit never hangs).

        *trace* (from :meth:`trace_for`) wraps the whole submission in
        a ``service.request`` span and propagates the context to the
        batch that serves it.
        """
        if trace is None or not self._tracing:
            return await self._submit(request, None, None)
        rspan = open_span(
            "service.request",
            category="service",
            parent_id=trace.parent_id,
            trace_id=trace.trace_id,
            request_id=request.request_id,
        )
        try:
            response = await self._submit(request, trace, rspan)
        except BaseException:
            close_span(rspan, error=True)
            raise
        close_span(
            rspan,
            status=response.status,
            source=getattr(response, "source", None) or "none",
            degraded=bool(getattr(response, "degraded", False)),
        )
        return response

    async def _submit(
        self,
        request: SimRequest,
        trace: Optional[TraceContext],
        rspan: Optional[Any],
    ) -> SimResponse:
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()
        self._c_requests.add(1)
        try:
            kind, payload = request.payload()
            key = self.scheduler.cache_key(kind, payload)
        except ReproError as exc:
            self._c_err.add(1)
            return SimResponse.error(
                request.request_id, "invalid_request", str(exc)
            )
        now = loop.time()
        reason = self.admission.precheck(request.client_id, now)
        if reason is not None:
            return SimResponse.rejected(request.request_id, reason)
        # Fast path: persistent-cache hits answer inline, skipping the
        # queue -> batcher -> dispatch hops entirely.  This is what keeps
        # cache-hit latency flat under load, and it means a full queue
        # sheds only work that would actually cost compute.
        if self.executor.cache is not None:
            cached = self.executor.cache.get(key)
            if cached is not None:
                self._c_cache_hits.add(1)
                latency = loop.time() - now
                self._h_cache_latency.observe(latency)
                self._c_ok.add(1)
                result = self._summary_cache.get(key)
                if result is None:
                    result = summarize_record(request, cached)
                    if len(self._summary_cache) >= 4096:
                        self._summary_cache.clear()
                    self._summary_cache[key] = result
                return SimResponse(
                    status="ok",
                    request_id=request.request_id,
                    fingerprint=key,
                    source="cache",
                    result=result,
                    queue_seconds=0.0,
                    service_seconds=round(latency, 9),
                )
        # Load shedding: while the breaker is open, compute-path traffic
        # gets the analytic estimate instead of queueing work the
        # backend cannot currently finish.  (Cache hits were already
        # served above — degradation never applies to them.)
        if self.settings.degrade and not self.scheduler.breaker.allow(now):
            return self._degraded(request, key, "breaker_open", now)
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.settings.default_timeout_s
        )
        pending = PendingRequest(
            request=request,
            key=key,
            kind=kind,
            payload=payload,
            future=loop.create_future(),
            enqueued_at=now,
            deadline=(now + timeout) if timeout is not None else None,
        )
        if trace is not None and rspan is not None:
            # The request is about to join a batch: mark the flow start
            # (the exporter turns it into a Chrome flow arrow into the
            # batch span) and hand the batcher a context re-rooted under
            # this request's span.
            rspan.set(flow_out=trace.trace_id)
            pending.extra["trace"] = trace.child(rspan.span_id)
        reason = self.admission.enqueue(pending)
        if reason is not None:
            if reason == QUEUE_FULL and self.settings.degrade:
                # Saturation counts as a failure signal (it opens the
                # breaker under sustained overload) but the client still
                # gets an answer, not a 429.
                self.scheduler.breaker.record_failure(loop.time())
                return self._degraded(request, key, "queue_full", now)
            return SimResponse.rejected(request.request_id, reason)
        return await pending.future

    def _degraded(
        self, request: SimRequest, key: str, reason: str, started: float
    ) -> SimResponse:
        """The graceful-degradation response: analytic, flagged, 200."""
        loop = asyncio.get_running_loop()
        self.registry.counter("service.degraded", reason=reason).add(1)
        record = analytic_estimate(self.machine, request)
        return SimResponse(
            status="ok",
            request_id=request.request_id,
            fingerprint=key,
            source="degraded",
            degraded=True,
            result=summarize_record(request, record),
            queue_seconds=0.0,
            service_seconds=round(loop.time() - started, 9),
        )

    async def submit_many(self, requests: List[SimRequest]) -> List[SimResponse]:
        """Submit a client batch concurrently; order is preserved."""
        return list(
            await asyncio.gather(*(self.submit(r) for r in requests))
        )

    # -- introspection --------------------------------------------------------
    def slo_report(self) -> Tuple[bool, Dict[str, Any]]:
        """The ``GET /health`` verdict: (healthy, JSON document).

        Without the SLO engine (tsdb off) the service is trivially
        healthy — /health then degrades to a richer /healthz.  With it,
        the engine's multi-window verdict decides 200 vs 503.
        """
        base = self.health()
        if self.slo is None or self.tsdb is None:
            doc: Dict[str, Any] = {"healthy": True, "slo_enabled": False}
            doc.update(base)
            return True, doc
        if len(self.tsdb) == 0:
            self.tsdb.sample()
        report = self.slo.evaluate()
        report["slo_enabled"] = True
        report["service"] = base
        return bool(report["healthy"]), report

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok" if not self.admission.closed else "draining",
            "queue_depth": self.admission.depth(),
            "max_queue": self.settings.max_queue,
            "inflight_fingerprints": len(self.scheduler._inflight),
            "breaker": self.scheduler.breaker.state,
            "workers": self.executor.workers,
            "cache": (
                self.executor.cache.describe()
                if self.executor.cache is not None
                else "disabled"
            ),
        }
