"""The cluster coordinator: membership, routing, recovery, jobs.

One process owns the cluster picture and never computes simulation
points itself (except as a last-resort local fallback for job chunks
when the whole ring is gone):

- **Membership** (:mod:`.membership`): worker nodes join over HTTP and
  renew heartbeat leases; a tick task expires them ALIVE → SUSPECT →
  DEAD.  Every transition lands in the flight recorder, the
  ``cluster.membership_transitions`` counter, and per-state /
  per-node gauges.
- **Routing** (:mod:`.ring`): request fingerprints and job-chunk
  digests map onto worker nodes through a consistent-hash ring, so a
  node loss remaps only that node's arc.
- **Recovery** (:mod:`.assigner`): a DEAD node's in-flight chunks are
  detached exactly once and recomputed elsewhere; completions are
  first-write-wins with digest dedupe, so a slow "dead" node racing
  its replacement can never smuggle in a duplicate or conflicting
  result.
- **Forwarding**: ``/simulate`` walks the ring's preference list with
  hedged retry (a second node is raced after ``hedge_delay_s``),
  exponential backoff, and per-node circuit breakers — a flapping node
  is quarantined rather than hammered.  Only when *no* node is
  dispatchable does the coordinator degrade through
  :func:`repro.faults.degrade.analytic_estimate` (flagged
  ``degraded: true``), exactly like the single-box service.
- **Jobs**: the standard ``/jobs`` API backed by
  :class:`ClusterJobManager`, whose executor ships chunks to nodes as
  ``(spec, start, count)`` index ranges — nodes rebuild identical
  payload tuples from the spec, which is what keeps a cluster job's
  result stream byte-identical to a single-node run.

The ``cluster.assign`` fault point fires on every dispatch decision
(modes: ``error`` — the assignment is dropped before it reaches the
node; ``slow``), which is how chaos exercises the retry machinery
deterministically.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..faults.breaker import CircuitBreaker
from ..faults.degrade import analytic_estimate
from ..faults.injector import fire
from ..jobs.manager import JobManager, _ManagedJob
from ..obs.flight import flight
from ..obs.promtext import (
    PROM_CONTENT_TYPE, prometheus_text, wants_prometheus,
)
from ..service.api import (
    ServiceValidationError, SimResponse, parse_request, summarize_record,
)
from ..service.http import BaseHTTPServer, _HTTPError, _RawBody
from ..sweep.executor import SweepExecutor
from ..sweep.fingerprint import (
    CACHE_VERSION, fingerprint, machine_fingerprint_data,
)
from ..telemetry.state import metrics
from ..verify.fuzzer import case_digest
from . import assigner as assign_mod
from ._http import ClusterHTTPError, request_json, sync_request_json
from .assigner import Assigner
from .membership import ALIVE, DEAD, Membership, NodeInfo, SUSPECT
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ClusterJobExecutor",
    "ClusterJobManager",
    "ClusterState",
    "CoordinatorHTTPServer",
    "CoordinatorSettings",
]

_STATE_GAUGE = {ALIVE: 0.0, SUSPECT: 1.0, DEAD: 2.0}


@dataclass
class CoordinatorSettings:
    """Deployment knobs for one coordinator (CLI: ``repro coordinator``)."""

    lease_s: float = 3.0
    grace_s: float = 6.0
    vnodes: int = DEFAULT_VNODES
    #: Distinct nodes tried per request/chunk before giving up.
    max_attempts: int = 3
    #: Base of the exponential retry backoff between failed attempts.
    retry_backoff_s: float = 0.05
    #: Race a second node after this long without an answer (None/0
    #: disables hedging; hedges share the ``max_attempts`` budget).
    hedge_delay_s: Optional[float] = None
    forward_timeout_s: float = 30.0
    #: Answer compute requests analytically when the ring is empty.
    degrade: bool = True
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 2.0
    default_timeout_s: float = 30.0
    #: Reject joins whose machine fingerprint differs from ours — mixed
    #: fingerprints would break result byte-identity and cache dedupe.
    require_machine_match: bool = True
    jobs_dir: Optional[str] = None
    jobs_max_running: int = 1
    jobs_workers: "int | str | None" = 1


class ClusterState:
    """Membership + ring + assigner + per-node breakers, under one roof.

    Thread-safe: the coordinator's event loop and the job-runner
    threads both route through here.
    """

    def __init__(
        self,
        settings: CoordinatorSettings,
        machine_fingerprint: str,
        registry: Any = None,
    ):
        self.settings = settings
        self.machine_fingerprint = machine_fingerprint
        self.registry = registry or metrics()
        self.membership = Membership(
            lease_s=settings.lease_s, grace_s=settings.grace_s
        )
        self.ring = HashRing(vnodes=settings.vnodes)
        self.assigner = Assigner()
        self._breakers: Dict[str, CircuitBreaker] = {}

    # -- join / heartbeat -----------------------------------------------------
    def register(self, doc: Any) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(doc, dict) or not isinstance(doc.get("url"), str):
            return 400, {"error": "join body must carry a node url"}
        machine = str(doc.get("machine", ""))
        if (
            self.settings.require_machine_match
            and machine != self.machine_fingerprint
        ):
            self.registry.counter("cluster.joins_rejected").add(1)
            return 409, {
                "error": "machine fingerprint mismatch: node results "
                         "would not be byte-identical to this cluster's",
                "expected": self.machine_fingerprint,
                "got": machine,
            }
        node_id = doc.get("node_id") or None
        previous = (
            self.membership.get(node_id) if isinstance(node_id, str) else None
        )
        node = self.membership.join(
            url=doc["url"],
            machine=machine,
            capabilities=doc.get("capabilities") or {},
            node_id=node_id if isinstance(node_id, str) else None,
        )
        self.ring.add(node.node_id)
        self._breakers.pop(node.node_id, None)  # fresh slate on (re)join
        self.registry.counter("cluster.joins_accepted").add(1)
        recorder = flight()
        if recorder.enabled:
            recorder.record(
                "cluster", "node_joined",
                node_id=node.node_id, url=node.url,
                generation=node.generation,
                rejoin=previous is not None,
            )
        self.refresh_gauges()
        return 200, {
            "node_id": node.node_id,
            "generation": node.generation,
            "lease_s": self.settings.lease_s,
        }

    def heartbeat(self, doc: Any) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(doc, dict):
            return 400, {"error": "heartbeat body must be an object"}
        verdict = self.membership.renew(
            str(doc.get("node_id", "")), int(doc.get("generation", -1))
        )
        self.registry.counter(
            "cluster.heartbeats", verdict=verdict
        ).add(1)
        return 200, {"status": verdict}

    # -- lease expiry ---------------------------------------------------------
    def tick(self) -> List[Tuple[str, str, str]]:
        """Advance lease expiries; apply ring/assigner consequences."""
        transitions = self.membership.tick()
        recorder = flight()
        for node_id, from_state, to_state in transitions:
            self.registry.counter(
                "cluster.membership_transitions", to=to_state
            ).add(1)
            if recorder.enabled:
                recorder.record(
                    "cluster", "membership_transition",
                    node_id=node_id, from_state=from_state,
                    to_state=to_state,
                )
            if to_state == DEAD:
                self.ring.remove(node_id)
                orphans = self.assigner.reassign_for(node_id)
                self.registry.counter("cluster.nodes_lost").add(1)
                if orphans:
                    self.registry.counter(
                        "cluster.chunks_reassigned"
                    ).add(len(orphans))
                if recorder.enabled:
                    recorder.record(
                        "cluster", "node_dead",
                        node_id=node_id, reassigned=len(orphans),
                    )
                    recorder.dump("node-dead", node_id=node_id)
        if transitions:
            self.refresh_gauges()
        return transitions

    # -- routing --------------------------------------------------------------
    def breaker_for(self, node_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(node_id)
        if breaker is None:
            breaker = self._breakers[node_id] = CircuitBreaker(
                name=f"node:{node_id}",
                failure_threshold=self.settings.breaker_threshold,
                cooldown_s=self.settings.breaker_cooldown_s,
                registry=self.registry,
            )
        return breaker

    def next_candidate(
        self, key: str, tried: Set[str]
    ) -> Optional[NodeInfo]:
        """The best untried node for *key*: ring order, ALIVE before
        SUSPECT, quarantined (breaker-open) nodes skipped."""
        preference = self.ring.preference(key, count=len(self.ring) or 1)
        now = time.monotonic()
        suspect: Optional[NodeInfo] = None
        for node_id in preference:
            if node_id in tried:
                continue
            node = self.membership.get(node_id)
            if node is None or node.state == DEAD:
                continue
            if not self.breaker_for(node_id).allow(now):
                continue
            if node.state == ALIVE:
                return node
            if suspect is None:
                suspect = node
        return suspect

    def note_success(self, node: NodeInfo) -> None:
        self.breaker_for(node.node_id).record_success()

    def note_failure(self, node: NodeInfo) -> None:
        self.breaker_for(node.node_id).record_failure(time.monotonic())
        self.registry.counter(
            "cluster.forward_failures", node=node.node_id
        ).add(1)

    # -- introspection --------------------------------------------------------
    def refresh_gauges(self) -> None:
        counts = self.membership.counts()
        for state, count in counts.items():
            self.registry.gauge("cluster.nodes", state=state).set(
                float(count)
            )
        for node in self.membership.nodes():
            self.registry.gauge(
                "cluster.node_state", node=node.node_id
            ).set(_STATE_GAUGE.get(node.state, 2.0))

    def describe(self) -> Dict[str, Any]:
        counts = self.membership.counts()
        return {
            "status": "ok" if counts[ALIVE] else (
                "degraded" if counts[SUSPECT] else "empty"
            ),
            "machine": self.machine_fingerprint,
            "counts": counts,
            "nodes": [n.to_dict() for n in self.membership.nodes()],
            "ring": self.ring.describe(),
            "assigner": self.assigner.stats(),
        }


class ClusterJobExecutor:
    """Executor-shaped adapter that ships job chunks across the ring.

    Implements exactly the surface :func:`repro.jobs.manager.run_job`
    uses (``machine_fingerprint``, ``run_streaming``, ``close``).  Each
    chunk travels as ``(spec, start, count)``; the node's records come
    back with a digest the coordinator re-derives and registers with
    the assigner (first-write-wins).  A digest *conflict* raises — the
    job fails loudly rather than stream a wrong result.  When no node
    is dispatchable the chunk is computed on the local fallback
    executor: a cluster of zero nodes behaves exactly like ``repro job
    run`` on one box.
    """

    def __init__(
        self,
        state: ClusterState,
        settings: CoordinatorSettings,
        spec: Any,
        local: SweepExecutor,
    ):
        self.state = state
        self.settings = settings
        self.spec = spec
        self.spec_doc = spec.to_dict()
        self.local = local

    @property
    def machine_fingerprint(self) -> str:
        return self.local.machine_fingerprint

    def close(self) -> None:
        self.local.close()

    def run(self, kind: str, payloads: Any, stage: str) -> List[dict]:
        return self.local.run(kind, payloads, stage)

    def run_streaming(
        self,
        kind: str,
        payloads: Any,
        stage: str,
        sink: Any,
        chunk_size: int = 1024,
        checkpoint: Any = None,
        start_index: int = 0,
    ) -> int:
        done = 0
        index = start_index
        iterator = iter(payloads)
        while True:
            chunk = list(itertools.islice(iterator, max(1, chunk_size)))
            if not chunk:
                break
            records = self._resolve_chunk(kind, chunk, index, stage)
            for j, record in enumerate(records):
                sink(index + j, record)
            index += len(records)
            done += len(records)
            if checkpoint is not None:
                checkpoint(done)
        return done

    def _chunk_key(self, start: int, count: int) -> str:
        return case_digest(
            {
                "cluster_chunk": self.spec.spec_digest,
                "machine": self.machine_fingerprint,
                "start": start,
                "count": count,
            }
        )

    def _resolve_chunk(
        self, kind: str, chunk: List[tuple], start: int, stage: str
    ) -> List[dict]:
        state = self.state
        settings = self.settings
        key = self._chunk_key(start, len(chunk))
        tried: Set[str] = set()
        failures = 0
        while len(tried) < max(1, settings.max_attempts):
            node = state.next_candidate(key, tried)
            if node is None:
                break
            tried.add(node.node_id)
            state.assigner.assign(key, node.node_id)
            decision = fire("cluster.assign")
            if decision is not None:
                if decision.mode == "slow":
                    time.sleep(
                        decision.delay_s
                        if decision.delay_s is not None else 0.02
                    )
                elif decision.mode == "error":
                    # The assignment is lost before it reaches the node.
                    state.assigner.release(key)
                    failures += 1
                    continue
            try:
                status, doc = sync_request_json(
                    node.url, "POST", "/cluster/compute",
                    {
                        "spec": self.spec_doc,
                        "start": start,
                        "count": len(chunk),
                    },
                    timeout_s=settings.forward_timeout_s,
                )
            except ClusterHTTPError:
                state.note_failure(node)
                state.assigner.release(key)
                failures += 1
                time.sleep(
                    min(1.0, settings.retry_backoff_s * (2 ** failures))
                )
                continue
            records = (doc or {}).get("records") if status == 200 else None
            if (
                not isinstance(records, list)
                or len(records) != len(chunk)
                or (doc or {}).get("machine") != self.machine_fingerprint
            ):
                state.note_failure(node)
                state.assigner.release(key)
                failures += 1
                continue
            digest = case_digest(records)
            if digest != (doc or {}).get("digest"):
                # The payload was damaged in transit (or the node lied):
                # never stream it.
                state.note_failure(node)
                state.assigner.release(key)
                failures += 1
                continue
            verdict = state.assigner.complete(key, node.node_id, digest)
            if verdict == assign_mod.CONFLICT:
                state.registry.counter("cluster.chunk_conflicts").add(1)
                raise RuntimeError(
                    f"conflicting results for chunk {key} (points "
                    f"{start}..{start + len(chunk) - 1}): two nodes "
                    "disagree about a deterministic chunk — failing the "
                    "job rather than stream a wrong result"
                )
            state.note_success(node)
            state.registry.counter("cluster.chunks_remote").add(1)
            return records
        # Ring empty or every candidate exhausted: degrade to local
        # compute (identical results — same machine fingerprint).
        state.registry.counter("cluster.chunks_local").add(1)
        return self.local.run(kind, chunk, stage)


class ClusterJobManager(JobManager):
    """A :class:`JobManager` whose jobs execute across the ring."""

    def __init__(
        self,
        root: Any,
        machine: Any,
        state: ClusterState,
        settings: CoordinatorSettings,
        cache: Any = None,
        workers: "int | str | None" = None,
        max_running: int = 1,
        fsync: bool = False,
    ):
        super().__init__(
            root, machine, cache=cache, workers=workers,
            max_running=max_running, fsync=fsync,
        )
        self.state = state
        self.settings = settings

    def _make_executor(self, job: _ManagedJob) -> ClusterJobExecutor:
        local = SweepExecutor(
            self.machine, workers=self.workers, cache=self.cache
        )
        return ClusterJobExecutor(
            self.state, self.settings, job.spec, local
        )


class CoordinatorHTTPServer(BaseHTTPServer):
    """The coordinator's HTTP surface.

    =========================  =========================================
    ``POST /cluster/join``     node registration (capability +
                               machine-fingerprint metadata)
    ``POST /cluster/heartbeat``  lease renewal
    ``GET  /healthz``          liveness + node counts
    ``GET  /health``           full cluster state (ring, members,
                               assigner); 503 when no node is ALIVE
    ``GET  /metrics``          telemetry registry (JSON or Prometheus)
    ``POST /simulate``         forwarded over the ring (hedged retry,
                               breakers, degrade)
    ``POST /batch``            per-entry forwarding, one 200 envelope
    ``/jobs...``               durable jobs on the cluster executor
    =========================  =========================================
    """

    def __init__(
        self,
        machine: Any,
        settings: Optional[CoordinatorSettings] = None,
        host: str = "127.0.0.1",
        port: int = 8078,
        cache: Any = None,
    ):
        super().__init__(host, port)
        self.machine = machine
        self.settings = settings or CoordinatorSettings()
        self.registry = metrics()
        self.machine_fingerprint = fingerprint(
            machine_fingerprint_data(machine)
        )
        self.state = ClusterState(
            self.settings, self.machine_fingerprint, self.registry
        )
        self.jobs: Optional[ClusterJobManager] = None
        self._cache = cache
        self._tick_task: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------------
    async def _on_start(self) -> None:
        if self.settings.jobs_dir:
            self.jobs = ClusterJobManager(
                self.settings.jobs_dir,
                self.machine,
                self.state,
                self.settings,
                cache=self._cache,
                workers=self.settings.jobs_workers,
                max_running=self.settings.jobs_max_running,
            )
        self._tick_task = asyncio.ensure_future(self._tick_forever())
        self.state.refresh_gauges()

    async def _on_stop(self) -> None:
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self.jobs is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.jobs.shutdown
            )

    async def _tick_forever(self) -> None:
        interval = max(0.05, self.settings.lease_s / 2.0)
        while True:
            await asyncio.sleep(interval)
            try:
                self.state.tick()
            except Exception:
                # The tick loop must survive anything: a failed tick
                # only delays expiry by one interval.
                self.registry.counter("cluster.tick_errors").add(1)

    # -- routing --------------------------------------------------------------
    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any]:
        path, _, query = path.partition("?")
        if path == "/cluster/join":
            if method != "POST":
                raise _HTTPError(405, "use POST /cluster/join")
            return self.state.register(self._decode(body))
        if path == "/cluster/heartbeat":
            if method != "POST":
                raise _HTTPError(405, "use POST /cluster/heartbeat")
            return self.state.heartbeat(self._decode(body))
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "use GET /healthz")
            counts = self.state.membership.counts()
            return 200, {
                "status": "ok" if counts[ALIVE] else "degraded",
                "role": "coordinator",
                "nodes": counts,
            }
        if path == "/health":
            if method != "GET":
                raise _HTTPError(405, "use GET /health")
            doc = self.state.describe()
            healthy = doc["counts"][ALIVE] > 0
            return (200 if healthy else 503), doc
        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "use GET /metrics")
            if wants_prometheus(headers.get("accept", "")):
                text = prometheus_text(self.registry)
                return 200, _RawBody(PROM_CONTENT_TYPE, text.encode("utf-8"))
            return 200, {"metrics": self.registry.snapshot()}
        if path == "/simulate":
            if method != "POST":
                raise _HTTPError(405, "use POST /simulate")
            return await self._forward_simulate(body)
        if path == "/batch":
            if method != "POST":
                raise _HTTPError(405, "use POST /batch")
            return await self._forward_batch(self._decode(body))
        if path == "/jobs" or path.startswith("/jobs/"):
            return await self._route_jobs(method, path, query, body)
        raise _HTTPError(404, f"no route for {path}")

    def _jobs_manager(self) -> Any:
        if self.jobs is None:
            raise _HTTPError(
                503, "jobs disabled (start the coordinator with --jobs-dir)"
            )
        return self.jobs

    # -- forwarding -----------------------------------------------------------
    def _routing_key(self, request: Any) -> str:
        # Byte-for-byte the sweep executor's cache key, so the
        # coordinator's routing/degrade fingerprints line up with what
        # worker nodes (and chaos ground truth) report.
        kind, payload = request.payload()
        return fingerprint(
            {
                "version": CACHE_VERSION,
                "machine": self.machine_fingerprint,
                "kind": kind,
                "payload": payload,
            }
        )

    async def _forward_simulate(self, body: bytes) -> Tuple[int, Any]:
        obj = self._decode(body)
        try:
            request = parse_request(
                obj, default_timeout_s=self.settings.default_timeout_s
            )
        except ServiceValidationError as exc:
            self.registry.counter(
                "service.rejected", reason="invalid_request"
            ).add(1)
            request_id = ""
            if isinstance(obj, dict):
                request_id = str(obj.get("request_id", ""))[:64]
            response = SimResponse.error(
                request_id, "invalid_request", str(exc)
            )
            return response.http_status(), response.to_dict()
        key = self._routing_key(request)
        started = asyncio.get_running_loop().time()
        forwarded = await self._dispatch(key, obj)
        if forwarded is not None:
            return forwarded
        if self.settings.degrade:
            self.registry.counter(
                "cluster.degraded", reason="ring_unavailable"
            ).add(1)
            record = analytic_estimate(self.machine, request)
            response = SimResponse(
                status="ok",
                request_id=request.request_id,
                fingerprint=key,
                source="degraded",
                degraded=True,
                result=summarize_record(request, record),
                queue_seconds=0.0,
                service_seconds=round(
                    asyncio.get_running_loop().time() - started, 9
                ),
            )
            return 200, response.to_dict()
        response = SimResponse.error(
            request.request_id, "no_nodes",
            "no worker node is dispatchable and degradation is off",
        )
        return 503, response.to_dict()

    async def _dispatch(
        self, key: str, obj: Any
    ) -> Optional[Tuple[int, Any]]:
        """Hedged-retry forward over the preference list.

        Returns the first usable node answer, or ``None`` when the ring
        is empty / every attempt failed (the caller degrades).  A 5xx
        (or transport error) counts against the node's breaker and the
        next candidate is tried after an exponential backoff; any
        non-5xx answer is authoritative and passed through.
        """
        settings = self.settings
        state = self.state
        pending: Dict[asyncio.Task, NodeInfo] = {}
        tried: Set[str] = set()
        launched = 0
        failures = 0

        async def launch_next() -> bool:
            nonlocal launched, failures
            while launched < max(1, settings.max_attempts):
                node = state.next_candidate(key, tried)
                if node is None:
                    return False
                tried.add(node.node_id)
                launched += 1
                decision = fire("cluster.assign")
                if decision is not None:
                    if decision.mode == "slow":
                        await asyncio.sleep(
                            decision.delay_s
                            if decision.delay_s is not None else 0.02
                        )
                    elif decision.mode == "error":
                        state.note_failure(node)
                        failures += 1
                        continue
                task = asyncio.ensure_future(
                    request_json(
                        node.url, "POST", "/simulate", obj,
                        timeout_s=settings.forward_timeout_s,
                    )
                )
                pending[task] = node
                return True
            return False

        try:
            await launch_next()
            while pending:
                hedge = (
                    settings.hedge_delay_s
                    if settings.hedge_delay_s
                    and launched < settings.max_attempts
                    else None
                )
                done, _ = await asyncio.wait(
                    pending, timeout=hedge,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # The primary is slow: race the next ring candidate.
                    if await launch_next():
                        self.registry.counter("cluster.hedges").add(1)
                    else:
                        # Nobody left to hedge onto — wait out the
                        # in-flight attempts without a timer.
                        launched = max(launched, settings.max_attempts)
                    continue
                for task in done:
                    node = pending.pop(task)
                    try:
                        status, doc = task.result()
                    except ClusterHTTPError:
                        status, doc = 0, None
                    except asyncio.CancelledError:
                        continue
                    if status and status < 500 and isinstance(doc, dict):
                        state.note_success(node)
                        self.registry.counter(
                            "cluster.forwarded", node=node.node_id
                        ).add(1)
                        return status, doc
                    state.note_failure(node)
                    failures += 1
                if not pending:
                    if launched >= settings.max_attempts:
                        break
                    await asyncio.sleep(
                        min(1.0, settings.retry_backoff_s * (2 ** failures))
                    )
                    self.registry.counter("cluster.retries").add(1)
                    if not await launch_next():
                        break
            return None
        finally:
            for task in pending:
                task.cancel()

    async def _forward_batch(self, obj: Any) -> Tuple[int, Any]:
        if not isinstance(obj, dict) or not isinstance(
            obj.get("requests"), list
        ):
            raise _HTTPError(400, "/batch body must be {'requests': [...]}")
        entries = obj["requests"]
        bodies = [
            json.dumps(entry, separators=(",", ":")).encode()
            for entry in entries
        ]
        results = await asyncio.gather(
            *(self._forward_simulate(body) for body in bodies)
        )
        return 200, {"responses": [doc for _status, doc in results]}
