"""Heartbeat-lease membership: join / renew / expire with suspect→dead.

Every worker node holds a *lease* it must renew by heartbeating before
``lease_s`` elapses.  A node that misses its lease turns ``SUSPECT`` —
it stays routable (the ring keeps it; a GC pause or a dropped packet
should not reshuffle the keyspace) but the coordinator stops preferring
it.  After a further ``grace_s`` without a renewal it turns ``DEAD``:
the ring drops it and its in-flight assignments are re-enqueued.

Zombie fencing: each successful join mints a *generation* number, and
renewals must quote it.  A node that was declared DEAD and later wakes
up renews with a stale generation and is told to re-join — it can never
silently resurrect into a ring that already re-assigned its work (the
assigner's digest dedupe is the second line of defense; see
``assigner.py``).

The clock is injected (``clock=`` callable) so the state machine is
deterministic under test and benchable without sleeping.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "ALIVE",
    "DEAD",
    "Membership",
    "NodeInfo",
    "SUSPECT",
]

ALIVE = "ALIVE"
SUSPECT = "SUSPECT"
DEAD = "DEAD"

#: Verdicts :meth:`Membership.renew` can return.
RENEW_OK = "ok"
RENEW_STALE = "stale"      # generation mismatch: zombie from before a rejoin
RENEW_UNKNOWN = "unknown"  # never joined, or DEAD — must re-join


@dataclass
class NodeInfo:
    """One worker node as the coordinator sees it."""

    node_id: str
    url: str
    machine: str = ""
    capabilities: Dict[str, Any] = field(default_factory=dict)
    generation: int = 1
    state: str = ALIVE
    joined_at: float = 0.0
    last_renewal: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "url": self.url,
            "machine": self.machine,
            "capabilities": dict(self.capabilities),
            "generation": self.generation,
            "state": self.state,
            "joined_at": self.joined_at,
            "last_renewal": self.last_renewal,
        }


class Membership:
    """Thread-safe lease table with the ALIVE → SUSPECT → DEAD machine.

    ``tick()`` advances expiries and returns the transitions it caused;
    the coordinator turns those into ring changes, re-assignments,
    gauges, and flight-recorder entries.  DEAD nodes are kept (so a
    zombie heartbeat can be told ``unknown`` instead of silently
    re-admitted) until a re-join replaces them.
    """

    def __init__(
        self,
        lease_s: float = 3.0,
        grace_s: float = 6.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        if grace_s < 0:
            raise ValueError(f"grace_s must be >= 0, got {grace_s}")
        self.lease_s = float(lease_s)
        self.grace_s = float(grace_s)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._nodes: Dict[str, NodeInfo] = {}
        self._generation = 0

    # -- lifecycle ------------------------------------------------------------
    def join(
        self,
        url: str,
        machine: str = "",
        capabilities: Optional[Dict[str, Any]] = None,
        node_id: Optional[str] = None,
    ) -> NodeInfo:
        """Admit (or re-admit) a node; mints an id when none is given.

        Re-joining an existing id bumps the generation — outstanding
        renewals quoting the old generation become ``stale``.
        """
        now = self._clock()
        with self._lock:
            self._generation += 1
            node = NodeInfo(
                node_id=node_id or f"node-{uuid.uuid4().hex[:12]}",
                url=url,
                machine=machine,
                capabilities=dict(capabilities or {}),
                generation=self._generation,
                state=ALIVE,
                joined_at=now,
                last_renewal=now,
            )
            self._nodes[node.node_id] = node
            return node

    def renew(self, node_id: str, generation: int) -> str:
        """Heartbeat: returns ``ok``, ``stale``, or ``unknown``."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None or node.state == DEAD:
                return RENEW_UNKNOWN
            if int(generation) != node.generation:
                return RENEW_STALE
            node.last_renewal = self._clock()
            if node.state == SUSPECT:
                node.state = ALIVE
            return RENEW_OK

    def tick(self, now: Optional[float] = None) -> List[Tuple[str, str, str]]:
        """Expire leases; returns ``(node_id, from_state, to_state)``.

        ALIVE past its lease turns SUSPECT; SUSPECT past lease + grace
        turns DEAD.  Both can happen in one tick after a long stall.
        """
        now = self._clock() if now is None else now
        transitions: List[Tuple[str, str, str]] = []
        with self._lock:
            for node in self._nodes.values():
                idle = now - node.last_renewal
                if node.state == ALIVE and idle > self.lease_s:
                    node.state = SUSPECT
                    transitions.append((node.node_id, ALIVE, SUSPECT))
                if node.state == SUSPECT and idle > self.lease_s + self.grace_s:
                    node.state = DEAD
                    transitions.append((node.node_id, SUSPECT, DEAD))
        return transitions

    def forget(self, node_id: str) -> bool:
        """Drop a DEAD node's tombstone entirely (tests/admin)."""
        with self._lock:
            return self._nodes.pop(node_id, None) is not None

    # -- introspection --------------------------------------------------------
    def get(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def nodes(self) -> List[NodeInfo]:
        with self._lock:
            return sorted(self._nodes.values(), key=lambda n: n.node_id)

    def routable(self) -> List[NodeInfo]:
        """Nodes that should be on the ring (ALIVE or SUSPECT)."""
        with self._lock:
            return sorted(
                (n for n in self._nodes.values() if n.state != DEAD),
                key=lambda n: n.node_id,
            )

    def counts(self) -> Dict[str, int]:
        out = {ALIVE: 0, SUSPECT: 0, DEAD: 0}
        with self._lock:
            for node in self._nodes.values():
                out[node.state] = out.get(node.state, 0) + 1
        return out
