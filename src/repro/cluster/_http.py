"""Minimal stdlib HTTP/1.1 JSON clients for intra-cluster calls.

Two shapes, because the cluster speaks HTTP from two worlds:

- :func:`request_json` — asyncio, used inside the coordinator's and the
  node agent's event loops (forwarding ``/simulate``, heartbeats).
- :func:`sync_request_json` — blocking ``urllib``, used from job-runner
  threads (the cluster job executor dispatches chunks from the thread
  :func:`repro.jobs.manager.run_job` runs on, not from the event loop).

Both raise :class:`ClusterHTTPError` on transport failure and return
``(status, document)`` otherwise — non-2xx is a *routing* signal the
caller classifies, not an exception.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request
from typing import Any, Optional, Tuple
from urllib.parse import urlsplit

from ..service.loadgen import _read_http_response

__all__ = [
    "ClusterHTTPError",
    "request_json",
    "split_base_url",
    "sync_request_json",
]


class ClusterHTTPError(Exception):
    """Transport-level failure talking to a cluster peer."""


def split_base_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` -> ``(host, port)``; strict on scheme."""
    parts = urlsplit(url)
    if parts.scheme != "http" or not parts.hostname:
        raise ValueError(f"cluster URLs must be http://host:port, got {url!r}")
    return parts.hostname, parts.port or 80


async def request_json(
    base_url: str,
    method: str,
    path: str,
    doc: Any = None,
    timeout_s: float = 10.0,
) -> Tuple[int, Any]:
    """One connection-per-call JSON request against a cluster peer."""
    host, port = split_base_url(base_url)
    body = b"" if doc is None else json.dumps(
        doc, separators=(",", ":")
    ).encode()
    frame = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        "Connection: close\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        raise ClusterHTTPError(f"connect {base_url}: {exc}") from exc
    try:
        writer.write(frame)
        await writer.drain()
        status, payload = await asyncio.wait_for(
            _read_http_response(reader), timeout_s
        )
        return status, payload
    except (
        ConnectionError, OSError, asyncio.TimeoutError,
        asyncio.IncompleteReadError, ValueError,
    ) as exc:
        raise ClusterHTTPError(f"{method} {base_url}{path}: {exc}") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def sync_request_json(
    base_url: str,
    method: str,
    path: str,
    doc: Any = None,
    timeout_s: float = 30.0,
) -> Tuple[int, Any]:
    """Blocking twin of :func:`request_json` (job-runner threads)."""
    body: Optional[bytes] = None if doc is None else json.dumps(
        doc, separators=(",", ":")
    ).encode()
    request = urllib.request.Request(
        f"{base_url}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            raw = response.read()
            status = response.status
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        status = exc.code
    except (urllib.error.URLError, ConnectionError, OSError) as exc:
        raise ClusterHTTPError(f"{method} {base_url}{path}: {exc}") from exc
    try:
        payload = json.loads(raw.decode("utf-8")) if raw else None
    except (UnicodeDecodeError, ValueError) as exc:
        raise ClusterHTTPError(
            f"{method} {base_url}{path}: non-JSON body"
        ) from exc
    return status, payload
