"""Exactly-once re-assignment with digest-deduped completion.

The failure this module exists for: a worker is declared DEAD (its
lease + grace expired), its in-flight chunk is re-enqueued on a
replacement — and then the original node, which was merely slow, comes
back with its answer.  Without fencing that chunk is computed twice and
the second answer could silently overwrite the first.

Two rules close the race:

1. **Exactly-once re-enqueue** — :meth:`reassign_for` detaches every
   in-flight key of the dead node and returns each key at most once per
   assignment; a second DEAD transition for the same node (flapping)
   returns nothing until the key is assigned again.
2. **Last-write-rejected** — the *first* completion for a key wins and
   records its result digest (keys are the PR-5 ``case_digest`` of the
   chunk; digests are the ``case_digest`` of the records).  Every later
   completion is rejected: ``duplicate`` when its digest matches the
   accepted one (benign — deterministic compute arriving twice),
   ``conflict`` when it differs (the alarm: two nodes disagreed about
   the same deterministic chunk, so one of them is wrong).  Conflicts
   are the zero-wrong-result tripwire — the caller must fail loudly,
   never pick one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

__all__ = ["Assigner", "COMPLETED_KEYS_MAX"]

#: Completed-key digests retained for dedupe (FIFO eviction).  A slow
#: zombie answering after 64k further chunks is indistinguishable from
#: a new key — acceptable: the store layer still verifies digests.
COMPLETED_KEYS_MAX = 65536

#: Verdicts :meth:`Assigner.complete` can return.
ACCEPTED = "accepted"
DUPLICATE = "duplicate"
CONFLICT = "conflict"
UNKNOWN = "unknown"


class Assigner:
    """Thread-safe in-flight assignment table for one coordinator."""

    def __init__(self, max_completed: int = COMPLETED_KEYS_MAX):
        self._lock = threading.Lock()
        self._in_flight: Dict[str, str] = {}          # key -> node_id
        self._orphaned: set = set()                   # detached, awaiting re-assign
        self._completed: "OrderedDict[str, str]" = OrderedDict()  # key -> digest
        self.assignments = 0
        self.reassignments = 0
        self.duplicates = 0
        self.conflicts = 0
        self._max_completed = max(1, int(max_completed))

    # -- assignment -----------------------------------------------------------
    def assign(self, key: str, node_id: str) -> None:
        """Record that *key* is in flight on *node_id*."""
        with self._lock:
            self._in_flight[key] = node_id
            self._orphaned.discard(key)
            self.assignments += 1

    def owner(self, key: str) -> Optional[str]:
        with self._lock:
            return self._in_flight.get(key)

    def release(self, key: str) -> None:
        """Drop *key* without completing it (caller is retrying itself)."""
        with self._lock:
            self._in_flight.pop(key, None)
            self._orphaned.discard(key)

    def reassign_for(self, node_id: str) -> List[str]:
        """Keys in flight on a now-DEAD node, each returned exactly once.

        Returned keys are detached (*orphaned*): a second call for the
        same node — or the same key before it is re-assigned — returns
        nothing, so a flapping node cannot double-enqueue work.
        """
        with self._lock:
            keys = sorted(
                key for key, owner in self._in_flight.items()
                if owner == node_id and key not in self._orphaned
            )
            for key in keys:
                del self._in_flight[key]
                self._orphaned.add(key)
            self.reassignments += len(keys)
            return keys

    # -- completion -----------------------------------------------------------
    def complete(self, key: str, node_id: str, digest: str) -> str:
        """First result for *key* wins; later writes are rejected.

        Returns ``accepted``, ``duplicate`` (same digest — benign),
        ``conflict`` (different digest — a wrong result exists
        somewhere; the caller must treat this as fatal), or ``unknown``
        (never assigned — refused outright).
        """
        with self._lock:
            accepted = self._completed.get(key)
            if accepted is not None:
                if accepted == digest:
                    self.duplicates += 1
                    return DUPLICATE
                self.conflicts += 1
                return CONFLICT
            if (
                self._in_flight.get(key) is None
                and key not in self._orphaned
            ):
                return UNKNOWN
            self._in_flight.pop(key, None)
            self._orphaned.discard(key)
            self._completed[key] = digest
            while len(self._completed) > self._max_completed:
                self._completed.popitem(last=False)
            return ACCEPTED

    # -- introspection --------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "in_flight": len(self._in_flight),
                "orphaned": len(self._orphaned),
                "completed": len(self._completed),
                "assignments": self.assignments,
                "reassignments": self.reassignments,
                "duplicates": self.duplicates,
                "conflicts": self.conflicts,
            }
