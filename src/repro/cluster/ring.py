"""Consistent-hash ring with virtual nodes.

Routing keys (request fingerprints, job-chunk digests) map to worker
nodes by hashing each node id onto ``vnodes`` points of a circular
sha256 keyspace and walking clockwise from the key's own hash to the
first point.  The property the cluster leans on is *minimal remap*:
adding or removing one node only moves the keys that land in that
node's arc — a key never moves between two surviving nodes (the
hypothesis suite in ``tests/properties/test_ring_properties.py`` pins
both the exact no-survivor-remap invariant and the expected
``keys/nodes`` remap volume).

Lookups are a ``bisect`` over a sorted tuple of hash points, rebuilt on
membership change: membership changes are rare (heartbeat-lease
expiries), lookups are per-request, so the structure is optimized for
the read side — the ``ring_lookup`` perf-gate bench holds the line.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing", "ring_hash"]

#: Virtual nodes per physical node.  64 keeps the per-node arc spread
#: tight (stddev of ownership ~ 1/sqrt(64) of the mean) while a
#: 16-node ring still rebuilds in well under a millisecond.
DEFAULT_VNODES = 64


def ring_hash(text: str) -> int:
    """Position of *text* on the ring: the top 64 bits of sha256."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Thread-safe consistent-hash ring over string node ids."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._points: Dict[int, str] = {}
        self._sorted: Tuple[int, ...] = ()
        self._nodes: Dict[str, Tuple[int, ...]] = {}

    # -- membership -----------------------------------------------------------
    def add(self, node_id: str) -> bool:
        """Add *node_id*; ``False`` if it was already on the ring."""
        with self._lock:
            if node_id in self._nodes:
                return False
            hashes = []
            for i in range(self.vnodes):
                point = ring_hash(f"{node_id}#{i}")
                # sha256 collisions across 64-bit truncations are
                # vanishingly rare; first-comer keeps the point so
                # add/remove stays an exact inverse.
                if point not in self._points:
                    self._points[point] = node_id
                    hashes.append(point)
            self._nodes[node_id] = tuple(hashes)
            self._rebuild()
            return True

    def remove(self, node_id: str) -> bool:
        """Remove *node_id*; ``False`` if it was not on the ring."""
        with self._lock:
            hashes = self._nodes.pop(node_id, None)
            if hashes is None:
                return False
            for point in hashes:
                self._points.pop(point, None)
            self._rebuild()
            return True

    def _rebuild(self) -> None:
        self._sorted = tuple(sorted(self._points))

    def __contains__(self, node_id: str) -> bool:
        with self._lock:
            return node_id in self._nodes

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        with self._lock:
            return sorted(self._nodes)

    # -- routing --------------------------------------------------------------
    def lookup(self, key: str) -> Optional[str]:
        """The node owning *key*; ``None`` on an empty ring."""
        points = self._sorted
        if not points:
            return None
        index = bisect_right(points, ring_hash(key))
        if index == len(points):
            index = 0  # wrap: the arc past the last point belongs to the first
        return self._points[points[index]]

    def preference(self, key: str, count: int = 3) -> List[str]:
        """Up to *count* distinct nodes for *key*, in ring order.

        The first entry is :meth:`lookup`'s owner; the rest are the
        retry/hedge fallbacks a scheduler walks when the owner fails.
        """
        with self._lock:
            points = self._sorted
            if not points or count < 1:
                return []
            start = bisect_right(points, ring_hash(key))
            out: List[str] = []
            for offset in range(len(points)):
                node = self._points[points[(start + offset) % len(points)]]
                if node not in out:
                    out.append(node)
                    if len(out) >= min(count, len(self._nodes)):
                        break
            return out

    def describe(self) -> Dict[str, int]:
        """Virtual-node point count per node (ring-state for /health)."""
        with self._lock:
            return {node: len(hashes)
                    for node, hashes in sorted(self._nodes.items())}
