"""repro.cluster — coordinator/worker clustering with node-loss recovery.

The layer that lets every prior subsystem survive losing a machine:

- :mod:`.membership` — heartbeat leases, ALIVE → SUSPECT → DEAD.
- :mod:`.ring` — consistent-hash routing with virtual nodes.
- :mod:`.assigner` — exactly-once re-assignment, digest-deduped
  completion (the zero-wrong-results fence).
- :mod:`.node` — a worker: the full service stack + registration and
  the ``/cluster/compute`` chunk endpoint (``repro node``).
- :mod:`.coordinator` — membership + forwarding + cluster jobs
  (``repro coordinator``).

See docs/CLUSTER.md for the membership lifecycle, ring semantics, and
the node-loss recovery walkthrough.
"""

from .assigner import Assigner
from .coordinator import (
    ClusterJobExecutor,
    ClusterJobManager,
    ClusterState,
    CoordinatorHTTPServer,
    CoordinatorSettings,
)
from .membership import ALIVE, DEAD, Membership, NodeInfo, SUSPECT
from .node import NodeAgent, NodeHTTPServer
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ALIVE",
    "Assigner",
    "ClusterJobExecutor",
    "ClusterJobManager",
    "ClusterState",
    "CoordinatorHTTPServer",
    "CoordinatorSettings",
    "DEAD",
    "DEFAULT_VNODES",
    "HashRing",
    "Membership",
    "NodeAgent",
    "NodeHTTPServer",
    "NodeInfo",
    "SUSPECT",
]
