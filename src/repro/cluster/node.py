"""The worker node: the existing service stack + cluster registration.

A node is a full :class:`~repro.service.http.ServiceHTTPServer` (same
admission control, batcher, breaker, degrade, jobs routes) with two
cluster additions:

- ``GET /cluster/info`` — identity + capability + machine-fingerprint
  metadata, and ``POST /cluster/compute`` — execute one job chunk
  ``{"spec": ..., "start": N, "count": M}``.  The chunk travels as the
  *spec* plus an index range, never as serialized payloads: the node
  reconstructs the exact payload tuples from the spec, so its records
  are byte-identical to what the coordinator (or a single-node run)
  would have computed locally.
- a :class:`NodeAgent` that registers with the coordinator over HTTP
  (``POST /cluster/join`` with capability + machine-fingerprint
  metadata) and then renews its lease on a timer.  The ``node.heartbeat``
  fault point fires on every beat (modes: ``drop`` — skip the renewal,
  the membership-expiry path; ``slow`` — delay it), and a heartbeat
  answered ``unknown``/``stale`` triggers a re-join: the node was
  declared dead (or superseded) and must re-enter through the front
  door rather than zombie-renew.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional, Tuple

from ..errors import SpecError
from ..faults.injector import fire
from ..obs.flight import flight
from ..telemetry.state import metrics
from ..verify.fuzzer import case_digest
from ..service.http import ServiceHTTPServer, _HTTPError
from ._http import ClusterHTTPError, request_json

__all__ = ["NodeAgent", "NodeHTTPServer", "MAX_CHUNK_POINTS"]

#: Largest chunk a node accepts in one /cluster/compute call.
MAX_CHUNK_POINTS = 4096


class NodeHTTPServer(ServiceHTTPServer):
    """A worker node's HTTP surface: the service routes + /cluster/*."""

    def __init__(self, *args: Any, node_id: str = "", **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.node_id = node_id
        # Chunks must not interleave with each other on the shared
        # executor; the coordinator dispatches them one at a time per
        # node anyway, so serializing here costs nothing and keeps the
        # streaming order deterministic under hedged duplicates.
        self._compute_lock = asyncio.Lock()

    def info(self) -> Dict[str, Any]:
        executor = self.service.executor
        return {
            "node_id": self.node_id,
            "machine": executor.machine_fingerprint,
            "capabilities": {
                "workers": executor.workers,
                "cache": executor.cache is not None,
                "experiments": ["gpu", "um"],
            },
        }

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any]:
        clean, _, _query = path.partition("?")
        if clean == "/cluster/info":
            if method != "GET":
                raise _HTTPError(405, "use GET /cluster/info")
            return 200, self.info()
        if clean == "/cluster/compute":
            if method != "POST":
                raise _HTTPError(405, "use POST /cluster/compute")
            return await self._compute_chunk(self._decode(body))
        return await super()._route(method, path, headers, body)

    async def _compute_chunk(self, obj: Any) -> Tuple[int, Any]:
        if not isinstance(obj, dict):
            raise _HTTPError(400, "/cluster/compute body must be an object")
        try:
            from ..jobs.api import parse_job_spec

            spec = parse_job_spec(obj.get("spec"))
        except SpecError as exc:
            raise _HTTPError(400, f"bad chunk spec: {exc}") from exc
        try:
            start = int(obj.get("start", 0))
            count = int(obj.get("count", 0))
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, "start/count must be integers") from exc
        if start < 0 or count < 1:
            raise _HTTPError(400, "need start >= 0 and count >= 1")
        if count > MAX_CHUNK_POINTS:
            raise _HTTPError(413, f"chunk of {count} exceeds cap")
        if start + count > spec.total_points():
            raise _HTTPError(400, "chunk range beyond the spec's grid")
        executor = self.service.executor
        payloads = list(
            itertools.islice(spec.payloads(), start, start + count)
        )
        loop = asyncio.get_running_loop()
        async with self._compute_lock:
            records = await loop.run_in_executor(
                None,
                lambda: executor.run(
                    "gpu_point", payloads, stage=f"chunk:{start}"
                ),
            )
        for index, record in enumerate(records):
            if isinstance(record, dict) and record.get("failed"):
                # A failed point poisons byte-identity; refuse the whole
                # chunk so the coordinator retries it elsewhere.
                raise _HTTPError(
                    500,
                    f"point {start + index} failed: "
                    f"{record.get('error', 'unknown')}",
                )
        metrics().counter("cluster.chunks_served").add(1)
        return 200, {
            "node_id": self.node_id,
            "machine": executor.machine_fingerprint,
            "start": start,
            "count": count,
            "records": records,
            "digest": case_digest(records),
        }


class NodeAgent:
    """Join the coordinator and keep the lease renewed.

    Runs as one asyncio task next to the node's server.  Lifecycle:
    join (retrying with backoff until the coordinator answers), then
    beat every ``lease_s / 3``; any ``unknown``/``stale`` verdict or a
    run of transport failures longer than the lease drops back to the
    join phase with a fresh generation.
    """

    def __init__(
        self,
        coordinator_url: str,
        server: NodeHTTPServer,
        node_id: Optional[str] = None,
        timeout_s: float = 10.0,
    ):
        self.coordinator_url = coordinator_url.rstrip("/")
        self.server = server
        self.node_id = node_id
        self.generation = 0
        self.lease_s = 3.0
        self.timeout_s = timeout_s
        self.joined = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    @property
    def node_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _join(self) -> None:
        """Register, retrying until the coordinator accepts us."""
        delay = 0.2
        info = self.server.info()
        while True:
            try:
                status, doc = await request_json(
                    self.coordinator_url, "POST", "/cluster/join",
                    {
                        "node_id": self.node_id,
                        "url": self.node_url,
                        "machine": info["machine"],
                        "capabilities": info["capabilities"],
                    },
                    timeout_s=self.timeout_s,
                )
            except ClusterHTTPError:
                metrics().counter("cluster.join_errors").add(1)
                await asyncio.sleep(delay)
                delay = min(5.0, delay * 2)
                continue
            if status != 200 or not isinstance(doc, dict):
                # e.g. machine-fingerprint mismatch: joining would break
                # byte-identity, so surface loudly and keep retrying (an
                # operator fixing the config should not need a restart).
                metrics().counter("cluster.join_rejected").add(1)
                recorder = flight()
                if recorder.enabled:
                    recorder.record(
                        "cluster", "join_rejected",
                        status=status, error=(doc or {}).get("error"),
                    )
                await asyncio.sleep(min(5.0, delay * 4))
                continue
            self.node_id = doc["node_id"]
            self.generation = int(doc["generation"])
            self.lease_s = float(doc.get("lease_s", self.lease_s))
            self.server.node_id = self.node_id
            self.joined.set()
            metrics().counter("cluster.joins").add(1)
            recorder = flight()
            if recorder.enabled:
                recorder.record(
                    "cluster", "joined",
                    node_id=self.node_id, generation=self.generation,
                    coordinator=self.coordinator_url,
                )
            return

    async def _run(self) -> None:
        await self._join()
        misses = 0
        while True:
            await asyncio.sleep(self.lease_s / 3.0)
            decision = fire("node.heartbeat")
            if decision is not None:
                if decision.mode == "drop":
                    # The partition shape: the beat never leaves the
                    # node; the coordinator's lease clock keeps running.
                    metrics().counter("cluster.heartbeats_dropped").add(1)
                    continue
                if decision.mode == "slow":
                    await asyncio.sleep(
                        decision.delay_s
                        if decision.delay_s is not None else 0.05
                    )
            try:
                _status, doc = await request_json(
                    self.coordinator_url, "POST", "/cluster/heartbeat",
                    {"node_id": self.node_id, "generation": self.generation},
                    timeout_s=self.timeout_s,
                )
            except ClusterHTTPError:
                misses += 1
                metrics().counter("cluster.heartbeat_errors").add(1)
                if misses * (self.lease_s / 3.0) > self.lease_s:
                    # Long enough that the coordinator may have expired
                    # us; rejoin rather than renew into a stale lease.
                    self.joined.clear()
                    await self._join()
                    misses = 0
                continue
            misses = 0
            verdict = (doc or {}).get("status")
            if verdict in ("unknown", "stale"):
                metrics().counter(
                    "cluster.heartbeat_rejected", verdict=verdict
                ).add(1)
                self.joined.clear()
                await self._join()
            else:
                metrics().counter("cluster.heartbeats").add(1)
