"""GPU memory-system model: achievable bandwidth via Little's law.

A streaming kernel sustains ``bytes_in_flight / latency`` until it hits the
DRAM ceiling.  Bytes in flight grow with (a) resident warps — set by grid
size and occupancy — and (b) bytes each warp keeps outstanding, which grows
with the per-iteration access width ``V * sizeof(T)`` up to an LSU cap.

This single mechanism explains the paper's central observation: the
baseline (V=1) curves need many more teams to approach peak and plateau
lower, while V=4 (32-bit types) or V=32 (int8) saturates ~89-95% of peak
once the grid fills the machine (Fig. 1a-d).
"""

from __future__ import annotations

from ..dtypes import scalar_type
from ..hardware.spec import GpuSpec
from ..util.validation import check_positive_int
from .calibration import GpuCalibration, DEFAULT_CALIBRATION

__all__ = ["warp_inflight_bytes", "achievable_bandwidth_gbs"]


def warp_inflight_bytes(
    gpu: GpuSpec,
    elements_per_iteration: int,
    element_type,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
) -> float:
    """Bytes one warp keeps in flight toward DRAM.

    ``warp_size * V * sizeof(T)`` — a warp issues one V-element-wide
    contiguous access per thread per iteration — clamped to the calibrated
    LSU/MSHR cap and scaled by the pipelining slack factor.
    """
    v = check_positive_int(elements_per_iteration, "elements_per_iteration")
    st = scalar_type(element_type)
    raw = gpu.warp_size * v * st.size
    capped = min(float(raw), calibration.warp_inflight_cap_bytes)
    return capped * calibration.mlp_scale * calibration.inflight_scale_for(st)


def achievable_bandwidth_gbs(
    gpu: GpuSpec,
    active_warps: int,
    elements_per_iteration: int,
    element_type,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
) -> float:
    """Sustained read bandwidth (GB/s) for a resident-warp population.

    ``min(efficiency(T) * peak, active_warps * inflight_bytes / latency)``.
    """
    check_positive_int(active_warps, "active_warps")
    per_warp = warp_inflight_bytes(
        gpu, elements_per_iteration, element_type, calibration
    )
    latency_s = gpu.memory.latency_ns * 1e-9
    concurrency_gbs = active_warps * per_warp / latency_s / 1e9
    ceiling_gbs = calibration.efficiency_for(element_type) * gpu.memory.peak_bandwidth_gbs
    return min(ceiling_gbs, concurrency_gbs)
