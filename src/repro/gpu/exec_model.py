"""Functional execution of reduction kernels.

This module actually computes the reduction with the same hierarchical
partitioning the device uses, fully vectorized with NumPy (no Python loop
over threads):

1. ``distribute`` — the iteration space is split into contiguous
   static chunks per team;
2. ``parallel for`` — each team's chunk is split into contiguous static
   chunks per thread; each thread accumulates privately **in the result
   type R** (so int32 accumulation wraps, int8 inputs widen to int64, and
   float rounding follows the real grouping);
3. end-of-team combine over thread partials, then a final combine over
   team partials (deterministic team order).

For integers the result is exactly ``sum mod 2**bits`` regardless of the
geometry (modular addition is associative); for floats different geometries
legitimately produce slightly different roundings, which the verification
layer treats with a relative tolerance — the same situation as on real
hardware.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import UnsupportedReductionError
from ..telemetry.state import span as tele_span
from .kernels import ReductionKernel

__all__ = ["execute_reduction", "thread_chunk_starts"]

# Extended identifiers the executor lowers outside the ufunc table:
#
# * ``argmax`` — each thread tracks ``(best_value, best_index)`` and the
#   combine keeps the larger value, breaking ties toward the *lower*
#   index.  Because static chunks are contiguous and combined in thread
#   then team order, that hierarchy provably returns the first index of
#   the global maximum — i.e. exactly ``np.argmax`` — for every launch
#   geometry, so the executor computes it directly.
# * ``dot`` — products are widened to R first (``sum += (R)x[i]*(R)y[i]``)
#   and then accumulated with the ordinary ``+`` hierarchy, so the float
#   grouping (and integer wraparound) is the sum reduction's over the
#   product array.

_UFUNCS = {
    "+": np.add,
    "-": np.add,  # OpenMP 5.1: '-' combines with +
    "*": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
}

# Logical identifiers reduce the truth-values of the elements; `all` is a
# min over {0,1} and `any` a max, which keeps the reduceat path uniform.
_LOGICAL = {"&&": np.minimum, "||": np.maximum}


def thread_chunk_starts(
    n_elements: int, grid: int, block: int, v: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Static-schedule chunk boundaries for a two-level distribute/for split.

    Returns ``(thread_starts, team_starts)``: element offsets where each
    *active* thread's contiguous chunk begins, and the positions (indices
    into ``thread_starts``) where each active team's group of threads
    begins.  Both arrays are sorted and non-empty for ``n_elements > 0``.
    """
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    trip = -(-n_elements // v)  # iterations, last one possibly ragged
    team_iters = -(-trip // grid)
    n_active_teams = -(-trip // team_iters)
    thread_iters = -(-team_iters // block)
    per_team = np.arange(0, team_iters, thread_iters, dtype=np.int64)
    starts_iter = (
        np.arange(n_active_teams, dtype=np.int64)[:, None] * team_iters
        + per_team[None, :]
    ).ravel()
    starts_iter = starts_iter[starts_iter < trip]
    team_first_iter = np.arange(n_active_teams, dtype=np.int64) * team_iters
    team_starts = np.searchsorted(starts_iter, team_first_iter)
    return starts_iter * v, team_starts


def execute_reduction(data: np.ndarray, kernel: ReductionKernel,
                      second: Optional[np.ndarray] = None):
    """Run *kernel*'s reduction over *data*; returns a scalar of type R.

    *data* may be shorter than ``kernel.elements`` (the functional layer
    runs on size-capped arrays while the performance model reasons about
    the declared size); the schedule shape (grid/block/V) is applied to the
    actual length.  Two-array identifiers (``dot``) take the second
    operand via *second*.
    """
    with tele_span("execute_reduction", category="gpu",
                   kernel=kernel.name, elements=int(data.size),
                   grid=kernel.geometry.grid, block=kernel.geometry.block):
        return _execute_reduction(data, kernel, second)


def _execute_reduction(data: np.ndarray, kernel: ReductionKernel,
                       second: Optional[np.ndarray] = None):
    if data.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {data.shape}")
    rtype = kernel.result_type.numpy
    ident = kernel.identifier
    if ident == "dot":
        if second is None:
            raise UnsupportedReductionError(
                "reduction-identifier 'dot' requires a second input array"
            )
        if second.shape != data.shape or second.dtype != data.dtype:
            raise ValueError(
                f"dot operands must match: {data.dtype}{data.shape} vs "
                f"{second.dtype}{second.shape}"
            )
    elif second is not None:
        raise ValueError(
            f"identifier {ident!r} reduces a single array, got a second "
            "operand"
        )
    if data.size == 0:
        if ident == "argmax":
            return rtype.type(-1)
        if ident == "dot":
            return rtype.type(0)
        return rtype.type(kernel.op.identity_for(kernel.result_type))
    if data.dtype != kernel.element_type.numpy:
        raise ValueError(
            f"data dtype {data.dtype} does not match kernel element type "
            f"{kernel.element_type.numpy}"
        )

    if ident == "argmax":
        # Geometry-independent by construction (see module notes).
        return rtype.type(int(np.argmax(data)))

    if ident == "dot":
        ufunc = _UFUNCS["+"]
        values = data.astype(rtype, copy=False) * second.astype(rtype, copy=False)
    elif ident in _LOGICAL:
        ufunc = _LOGICAL[ident]
        values = (data != 0).astype(rtype)
    elif ident in _UFUNCS:
        ufunc = _UFUNCS[ident]
        values = data
    else:  # pragma: no cover - registry and kernels stay in sync
        raise UnsupportedReductionError(
            f"no executable lowering for identifier {ident!r}"
        )

    thread_starts, team_starts = thread_chunk_starts(
        values.size,
        kernel.geometry.grid,
        kernel.geometry.block,
        kernel.elements_per_iteration,
    )
    # Thread-private accumulation in R (wrapping for ints via the dtype).
    partials = ufunc.reduceat(values, thread_starts, dtype=rtype)
    # End-of-team combine over that team's thread partials.
    if team_starts.size > 1:
        team_sums = ufunc.reduceat(partials, team_starts, dtype=rtype)
    else:
        team_sums = partials if partials.size == 1 else np.asarray(
            [ufunc.reduce(partials, dtype=rtype)], dtype=rtype
        )
    # Final combine across teams (deterministic team order).
    return rtype.type(ufunc.reduce(team_sums, dtype=rtype))
