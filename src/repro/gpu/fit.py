"""Calibration fitting: solve model coefficients from measured targets.

`DEFAULT_CALIBRATION` was produced by exactly this procedure against the
paper's Table 1 and then frozen.  The fitter is kept as a library feature
so the model can be re-targeted at other devices or future papers:

* each **baseline** bandwidth pins one per-result-type combine cost —
  the heuristic-geometry kernel is block-latency-bound, so the target
  trial time inverts linearly to cycles;
* each **optimized** bandwidth pins one per-element-type efficiency
  ceiling — the tuned kernel is memory-bound, so the target inverts to a
  fraction of peak.

The measurement-loop overheads (launch latency, the Listing 6 scalar
``target update`` pair) are reproduced from the hardware specs so fitted
constants compose with the same pipeline that will consume them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping, Tuple

from ..errors import SpecError
from ..hardware.spec import GpuSpec, LinkSpec
from ..openmp.heuristics import (
    DEFAULT_THREADS_PER_TEAM,
    default_num_teams,
)
from .calibration import DEFAULT_CALIBRATION, GpuCalibration
from .occupancy import occupancy

__all__ = ["FitTarget", "fit_calibration"]

#: (element-type name, result-type name, elements, optimized (teams, v)).
FitTarget = Tuple[str, str, int, Tuple[int, int]]


def _scalar_motion_seconds(link: LinkSpec, result_size: int) -> float:
    # Two `target update` transfers of the result scalar per trial.
    per = link.latency_us * 1e-6 + result_size / (link.bandwidth_gbs * 1e9)
    return 2.0 * per


def fit_calibration(
    gpu: GpuSpec,
    link: LinkSpec,
    targets: Mapping[str, Tuple[FitTarget, float, float]],
    base: GpuCalibration = DEFAULT_CALIBRATION,
) -> GpuCalibration:
    """Fit combine costs and efficiency ceilings to measured bandwidths.

    Parameters
    ----------
    targets:
        Per case name: ``((T, R, M, (teams, v)), base_gbs, opt_gbs)``.
    base:
        Calibration providing the structural constants (issue costs,
        in-flight caps...) that are *not* fitted.

    Returns
    -------
    GpuCalibration
        Copy of *base* with ``combine_cycles`` and ``efficiency`` entries
        replaced for the types the targets cover.

    Raises
    ------
    SpecError
        If a target implies a non-positive coefficient (the model cannot
        represent it — e.g. a baseline faster than its memory bound).
    """
    clock_hz = gpu.clock_ghz * 1e9
    launch = gpu.kernel_launch_latency_us * 1e-6
    combine: Dict[str, float] = dict(base.combine_cycles)
    efficiency: Dict[str, float] = dict(base.efficiency)

    for name, ((t_name, r_name, elements, (teams, v)), base_gbs, opt_gbs) \
            in targets.items():
        from ..dtypes import scalar_type

        etype = scalar_type(t_name)
        rtype = scalar_type(r_name)
        input_bytes = elements * etype.size
        scalar_motion = _scalar_motion_seconds(link, rtype.size)

        # ---- baseline -> combine cycles ---------------------------------
        grid = default_num_teams(elements, DEFAULT_THREADS_PER_TEAM)
        occ = occupancy(gpu, grid, DEFAULT_THREADS_PER_TEAM)
        slots = gpu.sms * occ.blocks_per_sm
        blocks_per_slot = -(-grid // slots)
        trial = input_bytes / (base_gbs * 1e9)
        body = trial - launch - scalar_motion
        if body <= 0:
            raise SpecError(
                f"{name}: baseline target {base_gbs} GB/s leaves no time "
                "for the kernel body"
            )
        d_cycles = body * clock_hz / blocks_per_slot
        avg_iters = max(
            1.0, (elements / 1) / (grid * DEFAULT_THREADS_PER_TEAM)
        )
        chain = (
            gpu.memory.latency_ns * 1e-9 * clock_hz
            + 1 * base.element_issue_for(etype)
        )
        fitted_combine = (
            d_cycles - base.block_setup_cycles - avg_iters * chain
        )
        if fitted_combine <= 0:
            raise SpecError(
                f"{name}: baseline target {base_gbs} GB/s is faster than "
                "the block dependent chain allows"
            )
        combine[rtype.name] = round(fitted_combine, 1)

        # ---- optimized -> efficiency ceiling ------------------------------
        trial_opt = input_bytes / (opt_gbs * 1e9)
        mem = trial_opt - launch - scalar_motion
        if mem <= 0:
            raise SpecError(
                f"{name}: optimized target {opt_gbs} GB/s leaves no time "
                "for memory traffic"
            )
        eff = input_bytes / (mem * gpu.memory.peak_bandwidth_gbs * 1e9)
        if not 0.0 < eff <= 1.0:
            raise SpecError(
                f"{name}: optimized target {opt_gbs} GB/s implies "
                f"efficiency {eff:.3f} outside (0, 1]"
            )
        efficiency[etype.name] = round(eff, 4)
        if etype.name == "int8":
            # int8 accumulates in int64 but streams int8 bytes; nothing
            # else to fit for the result type's efficiency.
            pass

    return replace(base, combine_cycles=combine, efficiency=efficiency)
