"""Device reduction strategies beyond the compiler's default lowering.

The paper's related work compares reduction implementations that trade
tree combines for atomics (refs [21-23, 28]: the author's atomics-based
OpenCL/SYCL/HIP reductions; ref [29]: cross-model abstraction analysis),
and §VI defers "other reduction abstractions" to future studies.  This
module provides that comparison on the simulated device:

* ``TREE`` — the NVHPC-style lowering modelled throughout the paper
  reproduction: shared-memory tree per team, one global combine per team
  (its cost is the calibrated per-block combine).
* ``WARP_ATOMIC`` — warp-shuffle reduction, then one global atomic per
  warp: cheap block epilogue, ``total_warps`` same-address atomics.
* ``THREAD_ATOMIC`` — every thread issues a global atomic with its local
  sum: no combine at all, ``total_threads`` same-address atomics.

Same-address atomics serialize at the memory subsystem, so the atomic
term is ``n_ops x per-op latency`` and competes in the kernel-time max.
"""

from __future__ import annotations

import enum

from ..dtypes import scalar_type
from ..errors import SpecError

__all__ = ["ReductionStrategy", "atomic_ops", "ATOMIC_SAME_ADDRESS_NS"]


class ReductionStrategy(enum.Enum):
    """How thread-local partial sums reach the global result."""

    TREE = "tree"
    WARP_ATOMIC = "warp-atomic"
    THREAD_ATOMIC = "thread-atomic"


#: Serialized per-op latency (ns) of same-address global atomics, by
#: result type.  Integers use native atomic add; floating-point adds go
#: through a slower path (fitted to the ~3x float combine penalty observed
#: in the baseline calibration).
ATOMIC_SAME_ADDRESS_NS = {
    "int8": 4.0,
    "int32": 4.0,
    "int64": 6.0,
    "float32": 12.0,
    "float64": 14.0,
}


def atomic_same_address_ns(result_type) -> float:
    name = scalar_type(result_type).name
    try:
        return ATOMIC_SAME_ADDRESS_NS[name]
    except KeyError:  # pragma: no cover - registry covers all types
        raise SpecError(f"no atomic latency for type {name!r}") from None


def atomic_ops(strategy: ReductionStrategy, grid: int, warps_per_block: int,
               block: int) -> int:
    """Global same-address atomics one kernel issues under *strategy*.

    The TREE strategy's single per-team combine is accounted inside the
    calibrated per-block cost, so it reports zero extra atomics here.
    """
    if strategy is ReductionStrategy.TREE:
        return 0
    if strategy is ReductionStrategy.WARP_ATOMIC:
        return grid * warps_per_block
    if strategy is ReductionStrategy.THREAD_ATOMIC:
        return grid * block
    raise SpecError(f"unknown strategy {strategy!r}")  # pragma: no cover
