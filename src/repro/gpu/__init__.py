"""Hopper GPU execution model.

Two cooperating layers:

* a **performance model** (:mod:`repro.gpu.perf`) that predicts kernel time
  from launch geometry, built on an occupancy calculator
  (:mod:`repro.gpu.occupancy`) and a memory-level-parallelism bandwidth
  model (:mod:`repro.gpu.memory_system`), with fitted constants collected
  in :mod:`repro.gpu.calibration`;
* a **functional executor** (:mod:`repro.gpu.exec_model`) that actually
  computes the reduction with the same team/thread partitioning the
  device would use, so results (including integer wraparound and float
  rounding) are real.
"""

from .occupancy import OccupancyResult, occupancy
from .memory_system import achievable_bandwidth_gbs
from .calibration import GpuCalibration, DEFAULT_CALIBRATION
from .kernels import ReductionKernel
from .perf import KernelTiming, estimate_kernel_time
from .exec_model import execute_reduction

__all__ = [
    "OccupancyResult",
    "occupancy",
    "achievable_bandwidth_gbs",
    "GpuCalibration",
    "DEFAULT_CALIBRATION",
    "ReductionKernel",
    "KernelTiming",
    "estimate_kernel_time",
    "execute_reduction",
]
