"""Analytic kernel-time model.

``time = launch + max(memory, issue, block_latency)`` with

* **memory**: input bytes over the achievable bandwidth from
  :mod:`repro.gpu.memory_system` (occupancy- and V-dependent);
* **issue**: total warp instructions over the GPU's aggregate issue rate —
  the compute-bound regime the paper notes for small team counts
  ("The increase turns a compute-bound kernel into a memory-bound kernel");
* **block latency**: each SM residency slot runs its share of the grid
  *serially*; one block's wall time is bounded below by its dependent
  chain — per iteration a load round-trip plus the serial accumulates —
  plus the end-of-team combine.  With the runtime-heuristic grids
  (millions of single-iteration blocks, Listing 2) this term dominates and
  produces the paper's 4.3-15.4% baseline efficiencies; with the
  optimized grids it collapses to noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.spec import GpuSpec
from .calibration import GpuCalibration, DEFAULT_CALIBRATION
from .kernels import ReductionKernel
from .memory_system import achievable_bandwidth_gbs
from .occupancy import occupancy
from .strategies import ReductionStrategy, atomic_ops, atomic_same_address_ns

__all__ = ["KernelTiming", "estimate_kernel_time"]


@dataclass(frozen=True)
class KernelTiming:
    """Decomposed kernel-time prediction (all in seconds)."""

    launch: float
    memory: float
    issue: float
    block_latency: float
    atomic: float = 0.0

    @property
    def total(self) -> float:
        return self.launch + max(
            self.memory, self.issue, self.block_latency, self.atomic
        )

    @property
    def memory_bound(self) -> bool:
        """True when DRAM traffic sets the kernel body time."""
        return self.memory >= max(self.issue, self.block_latency, self.atomic)

    @property
    def bottleneck(self) -> str:
        """Name of the dominant body term."""
        parts = {
            "memory": self.memory,
            "issue": self.issue,
            "block_latency": self.block_latency,
            "atomic": self.atomic,
        }
        return max(parts, key=parts.get)


def estimate_kernel_time(
    gpu: GpuSpec,
    kernel: ReductionKernel,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
    effective_bandwidth_gbs: "float | None" = None,
) -> KernelTiming:
    """Predict the execution time of *kernel* on *gpu*.

    Parameters
    ----------
    effective_bandwidth_gbs:
        Optional override of the memory-system ceiling, used by the
        unified-memory model when the kernel streams remote (LPDDR-
        resident) pages over the C2C link instead of local HBM.
    """
    geo = kernel.geometry
    occ = occupancy(gpu, geo.grid, geo.block)
    clock_hz = gpu.clock_ghz * 1e9

    # Memory term.
    bw = achievable_bandwidth_gbs(
        gpu,
        occ.active_warps,
        kernel.elements_per_iteration,
        kernel.element_type,
        calibration,
    )
    if effective_bandwidth_gbs is not None:
        bw = min(bw, effective_bandwidth_gbs)
    memory_time = kernel.input_bytes / (bw * 1e9)

    # Issue term: the whole iteration space, one warp-instruction bundle
    # per 32 thread-iterations, over the GPU's aggregate issue throughput.
    v = kernel.elements_per_iteration
    elem_cycles = calibration.element_issue_for(kernel.element_type)
    insts_per_iter = (
        calibration.loop_overhead_insts
        + calibration.iter_fixed_for(kernel.element_type)
        + v * elem_cycles
    )
    warp_insts = kernel.trip_count * insts_per_iter / gpu.warp_size
    issue_time = warp_insts / (gpu.sms * gpu.issue_rate_ipc * clock_hz)

    # Block-latency term: blocks_per_slot blocks run serially per residency
    # slot; a block's wall time is its dependent chain.  Within one
    # iteration the V loads issue back-to-back and overlap (one memory
    # round-trip), but iterations serialize on the accumulator.  The chain
    # uses the *average* iterations per thread (static chunks differ by at
    # most one and late blocks retire early), floored at one round-trip.
    latency_cycles = gpu.memory.latency_ns * 1e-9 * clock_hz
    chain_per_iter = latency_cycles + v * elem_cycles
    avg_iterations = max(1.0, kernel.trip_count / geo.total_threads)
    # The end-of-team epilogue depends on the strategy: the TREE lowering
    # pays the full calibrated combine; the atomic strategies replace it
    # with a short (or no) in-block phase plus global atomics below.
    if kernel.strategy is ReductionStrategy.TREE:
        epilogue = calibration.combine_cycles_for(kernel.result_type)
    elif kernel.strategy is ReductionStrategy.WARP_ATOMIC:
        epilogue = 120.0  # 5-level warp shuffle tree
    else:  # THREAD_ATOMIC
        epilogue = 0.0
    block_cycles = (
        calibration.block_setup_cycles
        + avg_iterations * chain_per_iter
        + epilogue
    )
    slots = gpu.sms * occ.blocks_per_sm
    blocks_per_slot = -(-geo.grid // slots)
    block_latency = blocks_per_slot * block_cycles / clock_hz

    # Same-address global atomics serialize at the memory subsystem.
    n_atomics = atomic_ops(
        kernel.strategy, geo.grid, occ.warps_per_block, geo.block
    )
    atomic_time = n_atomics * atomic_same_address_ns(kernel.result_type) * 1e-9

    return KernelTiming(
        launch=gpu.kernel_launch_latency_us * 1e-6,
        memory=memory_time,
        issue=issue_time,
        block_latency=block_latency,
        atomic=atomic_time,
    )
