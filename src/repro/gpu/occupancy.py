"""Occupancy calculation: how many blocks/warps are resident per SM.

The reduction kernels use no shared memory and few registers, so the only
binding limits are the architectural caps: resident warps per SM and
resident blocks per SM.  The result drives the memory-level-parallelism
model — the paper's saturation thresholds (4096 teams for C1/C3/C4, 32768
for C2) fall exactly where the grid first fills every SM to its residency
limit with enough bytes in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LaunchError
from ..hardware.spec import GpuSpec
from ..util.validation import check_positive_int

__all__ = ["OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Residency outcome for a launch of ``grid`` x ``block`` threads."""

    grid: int
    block: int
    warps_per_block: int
    blocks_per_sm: int
    active_blocks: int      # blocks simultaneously resident on the GPU
    active_warps: int       # warps simultaneously resident on the GPU
    waves: int              # ceil(grid / concurrent-block capacity)

    @property
    def full(self) -> bool:
        """True when the launch fills every SM to its block-residency cap."""
        return self.grid >= self.active_blocks and self.waves >= 1 and (
            self.active_blocks == self.blocks_per_sm * self._sms
        )

    # stored privately for `full`
    _sms: int = 0


def occupancy(gpu: GpuSpec, grid: int, block: int) -> OccupancyResult:
    """Compute residency for a ``grid`` x ``block`` launch on *gpu*.

    Raises
    ------
    LaunchError
        If the block size exceeds device limits.
    """
    check_positive_int(grid, "grid")
    check_positive_int(block, "block")
    if block > gpu.max_threads_per_block:
        raise LaunchError(
            f"block size {block} exceeds device maximum "
            f"{gpu.max_threads_per_block}"
        )
    warps_per_block = -(-block // gpu.warp_size)
    if warps_per_block > gpu.max_warps_per_sm:
        raise LaunchError(
            f"a {block}-thread block needs {warps_per_block} warps, more "
            f"than the {gpu.max_warps_per_sm} an SM can hold"
        )
    blocks_per_sm = min(
        gpu.max_blocks_per_sm, gpu.max_warps_per_sm // warps_per_block
    )
    capacity = gpu.sms * blocks_per_sm
    active_blocks = min(grid, capacity)
    return OccupancyResult(
        grid=grid,
        block=block,
        warps_per_block=warps_per_block,
        blocks_per_sm=blocks_per_sm,
        active_blocks=active_blocks,
        active_warps=active_blocks * warps_per_block,
        waves=-(-grid // capacity),
        _sms=gpu.sms,
    )
