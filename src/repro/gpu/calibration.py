"""Fitted constants of the GPU kernel-time model.

The performance model is mechanistic (occupancy, memory-level parallelism,
per-block combine costs) but its coefficients are *calibrated*: they were
fitted once against the paper's Table 1 (baseline and optimized GB/s for
C1-C4) and then frozen.  The experiments then test the model's
*generalization*: saturation thresholds across the whole (teams, V) sweep,
crossovers in the co-execution study, and every speedup band — none of
which were fitted directly.

All cycle counts are in GPU core cycles; see DESIGN.md §1 for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from ..dtypes import ScalarType, scalar_type
from ..errors import SpecError

__all__ = ["GpuCalibration", "DEFAULT_CALIBRATION"]


def _default_efficiency() -> Dict[str, float]:
    # Fraction of peak DRAM bandwidth a pure streaming-read kernel can
    # sustain, per element type.  Sub-32-bit elements pay extra DRAM
    # read-amplification and issue overhead; fitted to the paper's
    # efficiency column (89.4% for int8, 94-95% otherwise).
    # Values produced by repro.gpu.fit.fit_calibration against Table 1.
    return {
        "int8": 0.8985,
        "int32": 0.9485,
        "int64": 0.9484,
        "float32": 0.9473,
        "float64": 0.9555,
    }


def _default_combine_cycles() -> Dict[str, float]:
    # Per-block cost of the end-of-team reduction: intra-block tree +
    # global combine, by *result* type.  The NVHPC lowering uses a cheap
    # hardware atomic path for 32-bit integers and substantially more
    # expensive paths for 64-bit and floating-point results; these values
    # are fitted to the baseline column of Table 1 (620/172/271/526 GB/s),
    # where the heuristic grid launches millions of blocks and the
    # per-block combine dominates end-to-end time.
    # Values produced by repro.gpu.fit.fit_calibration against Table 1
    # (int8 mirrors int32: no paper case accumulates into int8).
    return {
        "int8": 2189.3,
        "int32": 2189.3,
        "int64": 3755.0,
        "float32": 6636.3,
        "float64": 6876.1,
    }


def _default_element_issue() -> Dict[str, float]:
    # Warp-instructions issued per element accumulated (load + convert +
    # add), by input type.  Sub-word types need widening arithmetic.
    return {
        "int8": 3.0,
        "int32": 2.0,
        "int64": 2.0,
        "float32": 2.0,
        "float64": 2.5,
    }


def _default_iter_fixed_insts() -> Dict[str, float]:
    # Extra warp-instructions per loop *iteration* independent of V:
    # sub-word elements need an unpack/widen sequence per vector access
    # that amortizes over the V elements it covers.  This is why int8
    # keeps gaining from V all the way to 32 (paper Fig. 1b) while the
    # 32-bit types stop at V = 4.
    return {
        "int8": 24.0,
        "int32": 0.0,
        "int64": 0.0,
        "float32": 0.0,
        "float64": 0.0,
    }


def _default_inflight_scale() -> Dict[str, float]:
    # Memory-level-parallelism derating per element type.  Byte-granular
    # streams keep fewer useful bytes in flight per scheduled access
    # (sector under-utilization in the LSU path), which pushes the int8
    # saturation threshold out to ~32768 teams as the paper observes.
    # 8-byte elements halve the outstanding vector loads per warp
    # (register pressure), which keeps the C4 saturation threshold at
    # ~4096 teams instead of ~1024.
    return {
        "int8": 0.6,
        "int32": 1.0,
        "int64": 0.5,
        "float32": 1.0,
        "float64": 0.5,
    }


@dataclass(frozen=True)
class GpuCalibration:
    """Model coefficients; defaults reproduce the paper's testbed.

    Parameters
    ----------
    warp_inflight_cap_bytes:
        Maximum bytes one warp keeps in flight toward DRAM (LSU/MSHR
        limit).  This cap is what makes wide per-thread accesses need the
        *whole* GPU (teams = 4096 at V=4x4B, 32768 at V=32x1B) before
        bandwidth saturates — the paper's two observed thresholds.
    mlp_scale:
        Dimensionless multiplier on in-flight bytes (pipelining slack).
    loop_overhead_insts:
        Warp instructions per loop iteration independent of V (index
        arithmetic, compare, branch).
    block_setup_cycles:
        Fixed per-block scheduling/prologue cost, added to the per-result-
        type combine cost from :attr:`combine_cycles`.
    efficiency:
        Per input-type fraction of peak DRAM bandwidth reachable.
    combine_cycles:
        Per result-type end-of-block reduction cost (cycles).
    element_issue_insts:
        Per input-type warp instructions per element accumulated.
    iter_fixed_insts:
        Per input-type warp instructions per loop iteration (amortize
        over V) — the sub-word unpack/widen overhead.
    inflight_scale:
        Per input-type derating of in-flight bytes (sub-word sector
        under-utilization).
    """

    warp_inflight_cap_bytes: float = 512.0
    mlp_scale: float = 1.0
    loop_overhead_insts: float = 10.0
    block_setup_cycles: float = 150.0
    efficiency: Mapping[str, float] = field(default_factory=_default_efficiency)
    combine_cycles: Mapping[str, float] = field(default_factory=_default_combine_cycles)
    element_issue_insts: Mapping[str, float] = field(default_factory=_default_element_issue)
    iter_fixed_insts: Mapping[str, float] = field(default_factory=_default_iter_fixed_insts)
    inflight_scale: Mapping[str, float] = field(default_factory=_default_inflight_scale)

    def __post_init__(self) -> None:
        if self.warp_inflight_cap_bytes <= 0:
            raise SpecError("warp_inflight_cap_bytes must be positive")
        if self.mlp_scale <= 0:
            raise SpecError("mlp_scale must be positive")
        for name, table in (
            ("efficiency", self.efficiency),
            ("combine_cycles", self.combine_cycles),
            ("element_issue_insts", self.element_issue_insts),
            ("inflight_scale", self.inflight_scale),
        ):
            for key, value in table.items():
                if value <= 0:
                    raise SpecError(f"{name}[{key!r}] must be positive, got {value}")
        for name, table in (
            ("efficiency", self.efficiency),
            ("inflight_scale", self.inflight_scale),
        ):
            for key, value in table.items():
                if value > 1.0:
                    raise SpecError(f"{name}[{key!r}] cannot exceed 1.0")
        for key, value in self.iter_fixed_insts.items():
            if value < 0:
                raise SpecError(
                    f"iter_fixed_insts[{key!r}] must be non-negative, got {value}"
                )

    # -- typed lookups ------------------------------------------------------
    def efficiency_for(self, element_type) -> float:
        return self._lookup(self.efficiency, element_type, "efficiency")

    def combine_cycles_for(self, result_type) -> float:
        return self._lookup(self.combine_cycles, result_type, "combine_cycles")

    def element_issue_for(self, element_type) -> float:
        return self._lookup(self.element_issue_insts, element_type, "element_issue_insts")

    def iter_fixed_for(self, element_type) -> float:
        return self._lookup(self.iter_fixed_insts, element_type, "iter_fixed_insts")

    def inflight_scale_for(self, element_type) -> float:
        return self._lookup(self.inflight_scale, element_type, "inflight_scale")

    @staticmethod
    def _lookup(table: Mapping[str, float], dtype, name: str) -> float:
        st: ScalarType = scalar_type(dtype)
        try:
            return table[st.name]
        except KeyError:
            raise SpecError(f"no {name} calibration for type {st.name!r}") from None

    def with_overrides(self, **kwargs) -> "GpuCalibration":
        """Copy with scalar fields replaced (for sensitivity studies)."""
        return replace(self, **kwargs)


#: The calibration used by all paper-reproduction experiments.
DEFAULT_CALIBRATION = GpuCalibration()
