"""Reduction kernel descriptors.

A :class:`ReductionKernel` is the lowered form of the paper's Listings 2/5:
the launch geometry, the per-iteration element count V, the element and
result types, and the reduction operator.  It is consumed by both the
performance model (:mod:`repro.gpu.perf`) and the functional executor
(:mod:`repro.gpu.exec_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import ScalarType, scalar_type
from ..errors import LaunchError
from ..openmp.reduction_ops import (
    ReductionOp,
    get_reduction_op,
    required_arrays,
    validate_reduction,
)
from ..openmp.runtime import LaunchGeometry
from ..util.validation import check_positive_int
from .strategies import ReductionStrategy

__all__ = ["ReductionKernel"]


@dataclass(frozen=True)
class ReductionKernel:
    """A lowered device reduction kernel.

    Parameters
    ----------
    name:
        Kernel symbol used in traces (e.g. ``"sum_reduction_v4"``).
    geometry:
        Resolved grid/block launch geometry.
    elements:
        Total input elements M the kernel reduces.
    elements_per_iteration:
        The paper's V — elements accumulated per loop iteration.
    element_type, result_type:
        The listing's ``T`` and ``R``.
    identifier:
        OpenMP reduction-identifier (``"+"`` for the paper).
    arrays:
        Input arrays the kernel streams (2 for ``dot``, else 1).  Input
        traffic scales with it.
    """

    name: str
    geometry: LaunchGeometry
    elements: int
    elements_per_iteration: int
    element_type: ScalarType
    result_type: ScalarType
    identifier: str = "+"
    strategy: ReductionStrategy = ReductionStrategy.TREE
    arrays: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.elements, "elements")
        check_positive_int(self.elements_per_iteration, "elements_per_iteration")
        if self.elements % self.elements_per_iteration:
            raise LaunchError(
                f"elements={self.elements} must be divisible by "
                f"V={self.elements_per_iteration} (the normalized Listing 5 "
                "loop iterates M/V times)"
            )
        # Freeze-friendly validation of the types / op combination.
        object.__setattr__(self, "element_type", scalar_type(self.element_type))
        object.__setattr__(self, "result_type", scalar_type(self.result_type))
        validate_reduction(self.identifier, self.result_type)
        if self.arrays != required_arrays(self.identifier):
            raise LaunchError(
                f"reduction-identifier {self.identifier!r} consumes "
                f"{required_arrays(self.identifier)} input array(s), "
                f"kernel declares {self.arrays}"
            )

    @property
    def op(self) -> ReductionOp:
        """The reduction operator implementation."""
        return get_reduction_op(self.identifier, self.result_type)

    @property
    def trip_count(self) -> int:
        """Loop iterations: M / V (the normalized loop of Listing 5)."""
        return self.elements // self.elements_per_iteration

    @property
    def total_threads(self) -> int:
        return self.geometry.total_threads

    @property
    def input_bytes(self) -> int:
        """Bytes of input traffic — the numerator of the paper's metric.

        Two-array reductions (``dot``) stream both operands, doubling
        the traffic the memory term of the time model must move.
        """
        return self.arrays * self.elements * self.element_type.size

    @property
    def iterations_per_thread(self) -> int:
        """Static-schedule chunk size: ceil(trip_count / total_threads)."""
        return -(-self.trip_count // self.total_threads)

    def describe(self) -> str:
        """Human-readable one-liner for logs."""
        return (
            f"{self.name}: grid={self.geometry.grid} block={self.geometry.block} "
            f"V={self.elements_per_iteration} T={self.element_type} "
            f"R={self.result_type} M={self.elements}"
        )
