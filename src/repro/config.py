"""Global configuration knobs.

The library is deterministic by construction (all timing comes from the
simulated clock), but workload *data* is random.  :class:`ReproConfig`
carries the RNG seed plus global scaling switches used by tests and the
benchmark harness to shrink the paper's 4 GB arrays down to something a
laptop-sized CI run can execute functionally while the performance model
still reasons about the full-size problem.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

__all__ = ["ReproConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class ReproConfig:
    """Immutable run configuration.

    Parameters
    ----------
    seed:
        Seed for the NumPy :class:`~numpy.random.Generator` used to build
        workloads.
    functional_elements_cap:
        When functionally executing a reduction (actually summing numbers,
        as opposed to only predicting its runtime) arrays larger than this
        are sampled down.  The performance model always uses the *declared*
        element count, so measured bandwidth is unaffected.
    strict_verify:
        When ``True``, every offloaded reduction is checked against a host
        reference (paper §III.B) and mismatches raise
        :class:`~repro.errors.VerificationError`.
    sweep_workers:
        Default pool width for the :class:`~repro.sweep.executor.
        SweepExecutor` when neither an explicit argument nor the
        ``REPRO_SWEEP_WORKERS`` environment variable is given.  ``None``
        (the default) means 1 — the exact serial seed behaviour; values
        <= 0 mean one worker per CPU.  Not part of cache fingerprints
        (scheduling never changes results).
    sweep_cache_dir:
        Default directory for the persistent sweep result cache when a
        driver enables it; ``None`` defers to ``REPRO_CACHE_DIR`` and
        then ``~/.cache/repro-sweep``.  Not part of cache fingerprints.
    telemetry:
        When ``True``, building a :class:`~repro.core.machine.Machine`
        from this config switches on the process-global telemetry layer
        (:mod:`repro.telemetry`): hierarchical spans, the metrics
        registry, and the Chrome-trace exporter.  Off by default — the
        disabled path is a no-op — and equivalent to setting
        ``REPRO_TELEMETRY=1`` or passing ``--trace-out``.  Not part of
        cache fingerprints (observability never changes results).
    sweep_task_timeout_s:
        Wall-clock budget per sweep task when the supervised worker pool
        runs it; a point exceeding the budget is recorded as failed in
        the sweep stats instead of aborting the sweep.  ``None`` (the
        default) disables the deadline; also settable per run via
        ``--timeout`` / ``REPRO_SWEEP_TIMEOUT``.  Not part of cache
        fingerprints.
    faults:
        Fault-injection spec (see :mod:`repro.faults.plan` for the
        grammar).  Building a :class:`~repro.core.machine.Machine` from
        a config with this set activates the plan process-wide, exactly
        like exporting ``REPRO_FAULTS``.  ``None`` (the default) leaves
        every injection point a no-op.  Not part of cache fingerprints —
        injected faults surface as *failed* points or detected
        corruption, never as silently different cached results.
    slab:
        When ``True`` (the default), ``gpu_point`` sweep stages take the
        batch-vectorized slab path (:mod:`repro.sim.batch`): precomputed
        model tables, whole-slab NumPy evaluation, shared-memory
        transport to pool workers, and a memoized
        :func:`~repro.core.timing.measure_gpu_reduction` fast path.
        ``False`` (``--no-slab``) forces the original point-at-a-time
        scalar pipeline — the differential oracle the slab path is
        byte-identical to.  Not part of cache fingerprints *because* of
        that byte-identity: both paths produce the same records.
    machine_profile:
        Named hardware profile (see :mod:`repro.hardware.profiles`) the
        :class:`~repro.core.machine.Machine` resolves its system from
        when no explicit system is passed.  ``"gh200"`` (the default) is
        the calibrated paper testbed and produces a system byte-identical
        to the pre-profile behaviour; ``"v100"`` and ``"a100"`` are the
        PCIe comparison nodes.  The profile is *indirectly* part of cache
        fingerprints: the resolved system object is fingerprinted, so
        results from different profiles never collide.
    flight_dir:
        When set, building a :class:`~repro.core.machine.Machine` from
        this config enables the crash flight recorder
        (:mod:`repro.obs.flight`) writing black-box dumps into this
        directory — equivalent to exporting ``REPRO_FLIGHT_DIR`` or
        serving with ``--flight-dir``.  ``None`` (the default) leaves
        every recording site a single attribute check.  Not part of
        cache fingerprints (observability never changes results).
    """

    seed: int = 0x5C2024
    functional_elements_cap: int = 1 << 22
    strict_verify: bool = True
    sweep_workers: Optional[int] = None
    sweep_cache_dir: Optional[str] = None
    telemetry: bool = False
    sweep_task_timeout_s: Optional[float] = None
    faults: Optional[str] = None
    slab: bool = True
    machine_profile: str = "gh200"
    flight_dir: Optional[str] = None

    def rng(self) -> np.random.Generator:
        """A fresh generator seeded from :attr:`seed`."""
        return np.random.default_rng(self.seed)

    def with_seed(self, seed: int) -> "ReproConfig":
        """Copy of this config with a different seed."""
        return replace(self, seed=seed)

    def with_cap(self, cap: int) -> "ReproConfig":
        """Copy of this config with a different functional-execution cap."""
        return replace(self, functional_elements_cap=int(cap))


#: Library-wide default configuration.
DEFAULT_CONFIG = ReproConfig()
