"""Job lifecycle: the durable sweep runner and the async manager.

:func:`run_job` is the synchronous core — one call takes a job
directory from whatever state a previous process left it in to the
furthest state this process can reach::

    PENDING -> RUNNING -> CHECKPOINTED -> ... -> DONE
                  |            |
                  v            v
               FAILED      CANCELLED

``CHECKPOINTED`` is the durable between-intervals state: it is what a
killed job's directory reads on restart, and what resume starts from.
Every checkpoint first flushes the result store, then atomically writes
``checkpoint.json`` + the working manifest, so the on-disk invariant
(durable shards >= checkpoint claim) holds at every instant.  Resume
never trusts its own bookkeeping: the store re-validates each durable
line against the spec's canonical per-point digest sequence
(:func:`repro.verify.fuzzer.case_digest`) and continues from exactly
the first missing point — which is what makes an interrupted-and-resumed
run byte-identical to an uninterrupted one (the
:mod:`repro.verify.differential` resume oracle).

A point that *fails* (timeout, quarantined worker) is never appended —
failure records are not deterministic, and one in the stream would
poison byte-identity forever.  The job fails at that index instead;
resuming retries from it.

:class:`JobManager` wraps :func:`run_job` with a background-thread
runner, a bounded running-set with FIFO admission, cancel events, and
the observability wiring: a ``jobs.state`` gauge per lifecycle state,
``job.checkpoint`` telemetry spans, and a flight-recorder dump when a
job fails.

The ``job.point`` fault-injection point fires once per completed point
(modes: ``crash`` — ``os._exit``, the SIGKILL shape that loses the
buffered tail; ``fail`` — a raised error driving the FAILED path;
``slow``), which is how the kill-mid-job chaos scenario and the
hypothesis resume property interrupt at an exact point index.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..errors import SpecError
from ..faults.injector import fire
from ..obs.flight import flight
from ..sweep.executor import SweepExecutor
from ..sweep.fingerprint import fingerprint, machine_fingerprint_data
from ..telemetry.state import metrics, span as tele_span
from .api import JobSpec, parse_job_spec
from .checkpoint import read_checkpoint, write_checkpoint
from .store import ResultStore, atomic_write_json, read_json

__all__ = [
    "JOB_STATES",
    "JobCancelled",
    "JobManager",
    "run_job",
]

#: Lifecycle states, in rough order of appearance.
JOB_STATES = (
    "PENDING",
    "RUNNING",
    "CHECKPOINTED",
    "DONE",
    "FAILED",
    "CANCELLED",
)

#: States a job directory can be (re)started from.
RESUMABLE_STATES = ("PENDING", "RUNNING", "CHECKPOINTED", "CANCELLED",
                    "FAILED")

STATE_FORMAT = "repro-jobs-state"
SPEC_FORMAT = "repro-jobs-spec"


class JobCancelled(Exception):
    """Internal control flow: the cancel event fired between chunks."""


class _JobPaused(Exception):
    """Internal control flow: ``max_points`` reached (tests/oracle)."""


class _PointFailed(Exception):
    """A point resolved to a failure record; the job must not absorb it."""


def state_path(directory: "Path | str") -> Path:
    return Path(directory) / "state.json"


def read_state(directory: "Path | str") -> Optional[Dict[str, Any]]:
    doc = read_json(state_path(directory))
    if isinstance(doc, dict) and doc.get("format") == STATE_FORMAT:
        return doc
    return None


def _write_state(
    directory: Path,
    job_id: str,
    state: str,
    done: int,
    total: int,
    error: Optional[str] = None,
) -> Dict[str, Any]:
    doc = {
        "format": STATE_FORMAT,
        "version": 1,
        "job_id": job_id,
        "state": state,
        "points_done": int(done),
        "points_total": int(total),
        "error": error,
        "pid": os.getpid(),
        "updated_at": time.time(),
    }
    atomic_write_json(state_path(directory), doc)
    return doc


def load_job_spec(directory: "Path | str") -> JobSpec:
    """The spec a job directory was created from (``spec.json``)."""
    doc = read_json(Path(directory) / "spec.json")
    if not isinstance(doc, dict) or doc.get("format") != SPEC_FORMAT:
        raise SpecError(f"{directory} does not contain a job spec")
    return parse_job_spec(doc.get("spec"))


def run_job(
    directory: "Path | str",
    spec: JobSpec,
    executor: SweepExecutor,
    max_points: Optional[int] = None,
    cancel_event: Optional[threading.Event] = None,
    progress: Optional[Callable[[int, str], None]] = None,
    fsync: bool = False,
) -> Dict[str, Any]:
    """Run (or resume) the job in *directory* to completion; returns the
    final state document.

    ``max_points`` stops cleanly (state ``CHECKPOINTED``) once at least
    that many *new* points resolved — the deterministic interruption the
    resume oracle uses.  ``cancel_event`` is polled at each checkpoint.
    ``progress(done, state)`` fires on every transition and checkpoint.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    fp = executor.machine_fingerprint
    job_id = spec.job_id(fp)

    def notify(done: int, state: str) -> None:
        if progress is not None:
            progress(done, state)

    # -- provenance: one directory belongs to one (spec, machine) pair.
    spec_file = directory / "spec.json"
    existing = read_json(spec_file)
    if existing is None:
        atomic_write_json(
            spec_file,
            {
                "format": SPEC_FORMAT,
                "version": 1,
                "job_id": job_id,
                "machine": fp,
                "spec": spec.to_dict(),
            },
            fsync=fsync,
        )
    elif (
        not isinstance(existing, dict)
        or existing.get("spec") != spec.to_dict()
        or existing.get("machine") != fp
    ):
        raise SpecError(
            f"{directory} belongs to a different job "
            f"(spec or machine fingerprint mismatch); refusing to mix "
            "result streams"
        )

    previous = read_state(directory)
    if previous is not None and previous.get("state") == "DONE":
        return previous  # idempotent: completed jobs never recompute

    total = spec.total_points()
    points_digest = spec.points_digest(fp)
    checkpoint = read_checkpoint(directory, job_id, spec.spec_digest)
    store = ResultStore(directory, shard_records=spec.shard_records)
    done = store.recover(spec.point_digests(fp))
    if checkpoint is not None and done < int(checkpoint["points_done"]):
        raise SpecError(
            f"durable results ({done} points) are behind the checkpoint "
            f"({checkpoint['points_done']}): the store lost acknowledged "
            "writes; refusing to resume"
        )
    manifest_base = {
        "job_id": job_id,
        "spec": spec.to_dict(),
        "spec_digest": spec.spec_digest,
        "machine": fp,
        "points_total": total,
        "points_digest": points_digest,
    }

    manifest_shards = -1
    state_synced = False

    def checkpoint_now(n: int, state: str = "CHECKPOINTED") -> None:
        nonlocal manifest_shards, state_synced
        with tele_span("job.checkpoint", category="jobs", points=n):
            store.flush(fsync=fsync)
            write_checkpoint(
                directory, job_id, spec.spec_digest, points_digest,
                n, total, fsync=fsync,
            )
            # The checkpoint document is the durable progress claim,
            # and it alone is rewritten every interval.  The working
            # manifest only documents shard layout, so it is rewritten
            # when the shard list changes; the state document only
            # records lifecycle transitions (readers recover progress
            # from the checkpoint), so it is rewritten on the first
            # checkpoint and on non-CHECKPOINTED states.  Keeping the
            # steady-state interval to one atomic write is what holds
            # the durability tax under the perf gate's 5% budget.
            shards = len(store.shard_names())
            if shards != manifest_shards or state != "CHECKPOINTED":
                store.write_manifest(
                    manifest_base, complete=False, fsync=fsync
                )
                manifest_shards = shards
            if not state_synced or state != "CHECKPOINTED":
                _write_state(directory, job_id, state, n, total)
                state_synced = True
        metrics().counter("jobs.checkpoints").add(1)
        notify(n, state)

    state = _write_state(directory, job_id, "RUNNING", done, total)
    notify(done, "RUNNING")
    digests = itertools.islice(spec.point_digests(fp), done, None)

    def sink(index: int, record: dict) -> None:
        decision = fire("job.point")
        if decision is not None:
            if decision.mode == "crash":
                # The SIGKILL shape: no flush, no atexit — the store's
                # buffered tail is lost, exactly like a real kill.
                os._exit(3)
            elif decision.mode == "fail":
                raise _PointFailed("injected job.point failure")
            elif decision.mode == "slow":
                time.sleep(
                    decision.delay_s if decision.delay_s is not None
                    else 0.01
                )
        if isinstance(record, dict) and record.get("failed"):
            raise _PointFailed(
                f"point {index} failed: {record.get('error', 'unknown')}"
            )
        store.append(index, next(digests), record)

    def on_chunk(new_points: int) -> None:
        n = done + new_points
        checkpoint_now(n)
        if cancel_event is not None and cancel_event.is_set():
            raise JobCancelled()
        if max_points is not None and new_points >= max_points:
            raise _JobPaused()

    try:
        if done < total:
            payloads = itertools.islice(spec.payloads(), done, None)
            executor.run_streaming(
                "gpu_point",
                payloads,
                stage=f"job:{job_id[:9]}",
                sink=sink,
                chunk_size=spec.checkpoint_interval,
                checkpoint=on_chunk,
                start_index=done,
            )
            done = store.records
    except JobCancelled:
        state = _write_state(directory, job_id, "CANCELLED",
                             store.records, total)
        notify(store.records, "CANCELLED")
        store.close()
        return state
    except _JobPaused:
        # The state document may lag the checkpoint (it only records
        # transitions); refresh it so a paused directory reports its
        # true durable progress.
        state = _write_state(directory, job_id, "CHECKPOINTED",
                             store.records, total)
        store.close()
        return state
    except BaseException as exc:
        done = store.records
        try:
            checkpoint_now(done, state="FAILED")
        except Exception:
            _write_state(directory, job_id, "FAILED", done, total,
                         error=str(exc))
        state = _write_state(directory, job_id, "FAILED", done, total,
                             error=str(exc))
        notify(done, "FAILED")
        metrics().counter("jobs.failed").add(1)
        recorder = flight()
        if recorder.enabled:
            recorder.record(
                "job", "failed", job_id=job_id, points_done=done,
                error=str(exc),
            )
            recorder.dump("job-failure", job_id=job_id, error=str(exc))
        store.close()
        raise

    # -- completion: seal the manifest (with per-shard digests) and the
    # final checkpoint, then archive when asked.
    with tele_span("job.finalize", category="jobs", points=done):
        store.flush(fsync=True)
        write_checkpoint(
            directory, job_id, spec.spec_digest, points_digest,
            done, total, fsync=True,
        )
        manifest = store.write_manifest(
            manifest_base, complete=True, fsync=True
        )
    store.close()
    state = _write_state(directory, job_id, "DONE", done, total)
    notify(done, "DONE")
    metrics().counter("jobs.completed").add(1)
    if spec.archive:
        from .archive import archive_job

        archive_job(directory)
    del manifest
    return state


class _ManagedJob:
    """One job the manager knows about (live or loaded from disk)."""

    def __init__(self, job_id: str, directory: Path, spec: JobSpec):
        self.job_id = job_id
        self.directory = directory
        self.spec = spec
        self.state = "PENDING"
        self.done = 0
        self.total = spec.total_points()
        self.error: Optional[str] = None
        self.cancel_event = threading.Event()
        self.thread: Optional[threading.Thread] = None

    @property
    def live(self) -> bool:
        return self.thread is not None and self.thread.is_alive()

    def status(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "state": self.state,
            "points_done": self.done,
            "points_total": self.total,
            "error": self.error,
            "case": self.spec.case,
            "label": self.spec.label,
            "spec_digest": self.spec.spec_digest,
        }


class JobManager:
    """Submit / poll / cancel / stream / resume over a jobs directory.

    Jobs run on daemon background threads, at most ``max_running`` at a
    time (FIFO admission for the rest — state ``PENDING``).  Each
    running job gets its own :class:`~repro.sweep.executor.
    SweepExecutor` sharing the manager's machine and result cache, so a
    warm cache accelerates resubmitted or overlapping grids.
    """

    def __init__(
        self,
        root: "Path | str",
        machine: Any,
        cache: Any = None,
        workers: "int | str | None" = None,
        max_running: int = 1,
        fsync: bool = False,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.machine = machine
        self.cache = cache
        self.workers = workers
        self.max_running = max(1, int(max_running))
        self.fsync = fsync
        self.machine_fingerprint = fingerprint(
            machine_fingerprint_data(machine)
        )
        self._jobs: Dict[str, _ManagedJob] = {}
        self._queue: List[str] = []
        self._lock = threading.Lock()

    # -- lookup ---------------------------------------------------------------
    def directory_for(self, job_id: str) -> Path:
        return self.root / job_id

    def _load(self, job_id: str) -> Optional[_ManagedJob]:
        """A handle for *job_id*, recovering disk state for dead jobs."""
        job = self._jobs.get(job_id)
        if job is not None:
            return job
        directory = self.directory_for(job_id)
        if not (directory / "spec.json").is_file():
            return None
        spec = load_job_spec(directory)
        job = _ManagedJob(job_id, directory, spec)
        doc = read_state(directory)
        if doc is not None:
            job.state = doc.get("state", "PENDING")
            job.done = int(doc.get("points_done", 0))
            job.error = doc.get("error")
            if job.state == "RUNNING":
                # The process that owned this job died without a
                # terminal transition; its durable truth is whatever the
                # last checkpoint pinned.
                job.state = "CHECKPOINTED"
                if doc.get("pid") != os.getpid():
                    # Persist the conversion (a dead owner can never do
                    # it): a stale RUNNING on disk would otherwise make
                    # every other reader — `repro job resume` included —
                    # see a phantom live job until a manual cancel.
                    _write_state(directory, job_id, "CHECKPOINTED",
                                 job.done, job.total, error=job.error)
            if job.state != "DONE":
                # The state document only records transitions; the
                # checkpoint is the per-interval progress claim.
                ckpt = read_checkpoint(directory)
                if ckpt is not None:
                    job.done = max(job.done, int(ckpt["points_done"]))
        self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._load(job_id)
            return None if job is None else job.status()

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            known = {p.name for p in self.root.iterdir() if p.is_dir()}
            known.update(self._jobs)
            docs = []
            for job_id in sorted(known):
                job = self._load(job_id)
                if job is not None:
                    docs.append(job.status())
            return docs

    # -- lifecycle ------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Submit (idempotently) and start when a slot is free."""
        job_id = spec.job_id(self.machine_fingerprint)
        with self._lock:
            job = self._load(job_id)
            if job is None:
                job = _ManagedJob(job_id, self.directory_for(job_id), spec)
                self._jobs[job_id] = job
                job.directory.mkdir(parents=True, exist_ok=True)
                if not (job.directory / "spec.json").is_file():
                    atomic_write_json(
                        job.directory / "spec.json",
                        {
                            "format": SPEC_FORMAT,
                            "version": 1,
                            "job_id": job_id,
                            "machine": self.machine_fingerprint,
                            "spec": spec.to_dict(),
                        },
                        fsync=self.fsync,
                    )
                _write_state(job.directory, job_id, "PENDING", 0, job.total)
            if job.live or job.state == "DONE":
                return job.status()
            self._enqueue(job)
            self._start_ready()
            self._refresh_gauges()
            return job.status()

    def resume(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Requeue an interrupted/cancelled/failed job; ``None`` if unknown."""
        with self._lock:
            job = self._load(job_id)
            if job is None:
                return None
            if job.live or job.state == "DONE":
                return job.status()
            job.error = None
            job.cancel_event = threading.Event()
            self._enqueue(job)
            self._start_ready()
            self._refresh_gauges()
            return job.status()

    def cancel(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Request cancellation; ``None`` if unknown.

        A queued job cancels immediately; a running one stops at its
        next checkpoint (its durable prefix stays resumable).
        """
        with self._lock:
            job = self._load(job_id)
            if job is None:
                return None
            if job.live:
                job.cancel_event.set()
            elif job.state in ("PENDING", "CHECKPOINTED"):
                if job.job_id in self._queue:
                    self._queue.remove(job.job_id)
                job.state = "CANCELLED"
                _write_state(job.directory, job.job_id, "CANCELLED",
                             job.done, job.total)
            self._refresh_gauges()
            return job.status()

    def stream(
        self, job_id: str, offset: int, max_records: int = 4096
    ) -> Optional[bytes]:
        """Durable JSONL tail from record *offset*; ``None`` if unknown."""
        with self._lock:
            job = self._load(job_id)
        if job is None:
            return None
        reader = ResultStore(
            job.directory, shard_records=job.spec.shard_records
        )
        reader.records = job.done if not job.live else self._disk_done(job)
        data, _count = reader.tail(offset, max_records)
        return data

    def _disk_done(self, job: _ManagedJob) -> int:
        doc = read_state(job.directory)
        return int(doc.get("points_done", 0)) if doc else 0

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Block until the job's thread exits (tests/CLI watch)."""
        with self._lock:
            job = self._jobs.get(job_id)
            thread = job.thread if job is not None else None
        if thread is not None:
            thread.join(timeout_s)
        return self.get(job_id)

    # -- internals ------------------------------------------------------------
    def _enqueue(self, job: _ManagedJob) -> None:
        if job.job_id not in self._queue:
            self._queue.append(job.job_id)
            job.state = "PENDING" if job.done == 0 else "CHECKPOINTED"

    def _start_ready(self) -> None:
        running = sum(1 for j in self._jobs.values() if j.live)
        while self._queue and running < self.max_running:
            job = self._jobs[self._queue.pop(0)]
            job.thread = threading.Thread(
                target=self._run, args=(job,),
                name=f"repro-job-{job.job_id[:9]}", daemon=True,
            )
            job.thread.start()
            running += 1

    def _make_executor(self, job: _ManagedJob) -> Any:
        """The executor one job run uses (factory so subclasses — the
        cluster job manager — can substitute a distributed one)."""
        return SweepExecutor(
            self.machine, workers=self.workers, cache=self.cache
        )

    def _run(self, job: _ManagedJob) -> None:
        executor = self._make_executor(job)

        def progress(done: int, state: str) -> None:
            job.done = done
            job.state = state
            self._refresh_gauges()

        try:
            job.state = "RUNNING"
            self._refresh_gauges()
            doc = run_job(
                job.directory,
                job.spec,
                executor,
                cancel_event=job.cancel_event,
                progress=progress,
                fsync=self.fsync,
            )
            job.state = doc.get("state", job.state)
            job.done = int(doc.get("points_done", job.done))
            job.error = doc.get("error")
        except Exception as exc:
            job.state = "FAILED"
            job.error = str(exc)
        finally:
            executor.close()
            with self._lock:
                self._start_ready()
                self._refresh_gauges()

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Graceful stop: drop the queue, cancel live jobs, join threads.

        Running jobs stop at their next checkpoint, so everything they
        had durably acknowledged stays resumable.
        """
        with self._lock:
            self._queue.clear()
            threads = []
            for job in self._jobs.values():
                if job.live:
                    job.cancel_event.set()
                    threads.append(job.thread)
        deadline = time.monotonic() + max(0.0, timeout_s)
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    def _refresh_gauges(self) -> None:
        registry = metrics()
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        for state, count in counts.items():
            registry.gauge("jobs.state", state=state).set(float(count))
