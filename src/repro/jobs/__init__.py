"""Durable, resumable sweep jobs (``repro job``, ``POST /jobs``).

The paper's study is a parameter sweep; this package is what lets the
repro run sweeps 1000x larger than ``reproduce_paper.py`` — grids that
fit neither one process's memory nor one process's lifetime:

* :mod:`repro.jobs.store` — the streaming result store: append-only
  JSONL shards with count-based rotation and an atomically-updated
  manifest, written one point at a time so collation never holds the
  result set in memory.
* :mod:`repro.jobs.checkpoint` — periodic durable progress markers
  keyed by the canonical per-case digest
  (:func:`repro.verify.fuzzer.case_digest`), so a restarted job skips
  completed points *exactly* and a crash loses at most one interval.
* :mod:`repro.jobs.manager` — :func:`~repro.jobs.manager.run_job` (the
  synchronous PENDING -> RUNNING -> CHECKPOINTED -> DONE/FAILED/
  CANCELLED state machine) and :class:`~repro.jobs.manager.JobManager`
  (background threads behind submit/poll/cancel/stream/resume).
* :mod:`repro.jobs.api` — :class:`~repro.jobs.api.JobSpec` and the
  strict spec validation the HTTP front end and CLI share.
* :mod:`repro.jobs.archive` — the content-addressed post-run archiver.

Resume correctness is enforced from the outside: the
:mod:`repro.verify.differential` resume oracle requires an interrupted-
then-resumed job's manifest and shards to be byte-identical to an
uninterrupted run's, and the kill-mid-job chaos scenario
(:func:`repro.faults.chaos.run_job_kill_chaos`) SIGKILLs real runner
processes until that holds under fire.  See docs/JOBS.md.
"""

from .api import JobSpec, parse_job_spec
from .archive import archive_job
from .checkpoint import read_checkpoint, write_checkpoint
from .manager import (
    JOB_STATES,
    JobCancelled,
    JobManager,
    load_job_spec,
    read_state,
    run_job,
)
from .store import ResultStore, atomic_write_json

__all__ = [
    "JOB_STATES",
    "JobCancelled",
    "JobManager",
    "JobSpec",
    "ResultStore",
    "archive_job",
    "atomic_write_json",
    "load_job_spec",
    "parse_job_spec",
    "read_checkpoint",
    "read_state",
    "run_job",
    "write_checkpoint",
]
