"""The streaming result store: append-only JSONL shards + manifest.

A :class:`ResultStore` is the durable half of a long-running sweep job.
Each resolved point becomes one canonical-JSON line appended to the
current shard (``shards/shard-00000.jsonl``, rotating every
``shard_records`` lines), so the coordinator never holds more than the
line being written.  Because points append in strict index order and
rotation is purely count-based, an interrupted-then-resumed job lays
down *byte-identical* shard files to an uninterrupted one — the property
the resume oracle in :mod:`repro.verify.differential` enforces.

Each line is ``{"d": <case digest>, "i": <index>, "r": <record>}`` in
canonical JSON.  The digest is the public
:func:`repro.verify.fuzzer.case_digest` of the point's parameter
document, which is what lets :meth:`recover` skip completed points
*exactly*: on restart it re-derives the expected digest sequence from
the job spec and validates the durable prefix line by line, truncating
at the first torn, corrupt, or unexpected line (a SIGKILL can tear at
most the tail that never reached the OS — one checkpoint interval).

The manifest (``manifest.json``) is updated only through an atomic
temp + ``os.replace`` write (the :class:`~repro.sweep.result_cache.
ResultCache` discipline), carries no wall-clock or host incidentals,
and is finalized with per-shard SHA-256s plus a whole-result digest —
so two runs that resolved the same points have byte-identical manifests.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import SpecError
from ..sweep.fingerprint import canonical_json

__all__ = [
    "MANIFEST_FORMAT",
    "ResultStore",
    "atomic_write_json",
    "read_json",
]

#: Manifest document format tag.
MANIFEST_FORMAT = "repro-jobs-manifest"

#: Shard file name pattern (index is the rotation ordinal).
_SHARD_NAME = "shard-{0:05d}.jsonl"

#: Subdirectory holding the shard files.
SHARD_DIR = "shards"

#: Default records per shard before rotation.
DEFAULT_SHARD_RECORDS = 8192


def atomic_write_json(
    path: "Path | str", doc: Any, fsync: bool = False
) -> Path:
    """Write *doc* as deterministic JSON via temp + ``os.replace``.

    Readers only ever observe a complete document; ``fsync=True`` adds
    machine-crash durability (process crashes never tear a rename).
    The temp name is a fixed ``.tmp`` sibling rather than ``mkstemp``:
    a job directory has exactly one writer, and the fixed name roughly
    halves the syscall cost of the per-interval checkpoint/state
    rewrites on the job hot path.  A crash-orphaned ``.tmp`` is never
    read and is simply overwritten by the next write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode(
        "utf-8"
    )
    tmp = str(path) + ".tmp"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        try:
            os.write(fd, blob)
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_json(path: "Path | str") -> Optional[Any]:
    """Load a JSON document, or ``None`` when absent/corrupt."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _encode_line(index: int, digest: str, record: dict) -> bytes:
    return (
        canonical_json({"d": digest, "i": index, "r": record}) + "\n"
    ).encode("utf-8")


class ResultStore:
    """Append-only sharded JSONL store for one job's results.

    Thread-safe: the job thread appends while HTTP handlers tail the
    durable bytes for ``GET /jobs/<id>/stream``.
    """

    def __init__(
        self,
        directory: "Path | str",
        shard_records: int = DEFAULT_SHARD_RECORDS,
    ):
        if shard_records < 1:
            raise SpecError(
                f"shard_records must be >= 1, got {shard_records}"
            )
        self.directory = Path(directory)
        self.shard_dir = self.directory / SHARD_DIR
        self.shard_records = int(shard_records)
        self.records = 0
        self._fh: Optional[Any] = None
        self._fh_shard = -1
        self._lock = threading.Lock()

    # -- paths ----------------------------------------------------------------
    def shard_path(self, shard: int) -> Path:
        return self.shard_dir / _SHARD_NAME.format(shard)

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _shard_of(self, index: int) -> int:
        return index // self.shard_records

    def shard_names(self) -> List[str]:
        """Names of the shards holding the current ``records`` prefix."""
        if self.records == 0:
            return []
        return [
            _SHARD_NAME.format(s)
            for s in range(self._shard_of(self.records - 1) + 1)
        ]

    # -- appending ------------------------------------------------------------
    def _open_for(self, shard: int) -> Any:
        if self._fh is None or self._fh_shard != shard:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.shard_path(shard), "ab")
            self._fh_shard = shard
        return self._fh

    def append(self, index: int, digest: str, record: dict) -> None:
        """Append the record for point *index* (must be the next point).

        Sequential appends are what make shard layout — and therefore
        the final manifest — a pure function of the resolved points.
        """
        with self._lock:
            if index != self.records:
                raise SpecError(
                    f"out-of-order append: expected point {self.records}, "
                    f"got {index}"
                )
            fh = self._open_for(self._shard_of(index))
            fh.write(_encode_line(index, digest, record))
            self.records += 1

    def flush(self, fsync: bool = False) -> None:
        """Push buffered lines to the OS (surviving a process kill)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                if fsync:
                    os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None
                self._fh_shard = -1

    # -- recovery -------------------------------------------------------------
    def recover(self, expected_digests: Iterable[str]) -> int:
        """Validate the durable prefix against the spec's digest sequence.

        Walks the shards line by line, checking each parses, carries the
        expected sequential index, and matches the next expected case
        digest.  The first torn/corrupt/mismatched line — and everything
        after it — is truncated away, so what remains is *exactly* the
        set of completed points.  Returns how many survive; the next
        :meth:`append` continues from there.
        """
        self.close()
        expected = iter(expected_digests)
        count = 0
        shard = 0
        while True:
            path = self.shard_path(shard)
            if not path.is_file():
                break
            keep = 0  # valid bytes within this shard
            bad = False
            with open(path, "rb") as fh:
                for raw in fh:
                    if not raw.endswith(b"\n"):
                        bad = True  # torn tail from a mid-line kill
                        break
                    try:
                        doc = json.loads(raw)
                        index, digest = doc["i"], doc["d"]
                    except (ValueError, KeyError, TypeError):
                        bad = True
                        break
                    if index != count or digest != next(expected, None):
                        bad = True
                        break
                    keep += len(raw)
                    count += 1
            if bad or count < (shard + 1) * self.shard_records:
                # Truncate the suspect tail; drop any later shards (they
                # can only hold post-gap records).
                if keep:
                    with open(path, "r+b") as fh:
                        fh.truncate(keep)
                else:
                    path.unlink()
                later = shard + 1
                while self.shard_path(later).is_file():
                    self.shard_path(later).unlink()
                    later += 1
                break
            shard += 1
        with self._lock:
            self.records = count
        return count

    # -- reading --------------------------------------------------------------
    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Stream every durable record document in index order."""
        self.flush()
        for name in self.shard_names():
            with open(self.shard_dir / name, "rb") as fh:
                for raw in fh:
                    yield json.loads(raw)

    def tail(
        self, offset: int, max_records: int = 4096
    ) -> Tuple[bytes, int]:
        """Raw JSONL bytes for records ``[offset, offset + max_records)``.

        The incremental-stream contract: a client passes the count of
        lines it has already seen and gets only complete lines back.
        Returns ``(data, count)``.
        """
        if offset < 0:
            raise SpecError(f"offset must be >= 0, got {offset}")
        self.flush()
        with self._lock:
            records = self.records
        if offset >= records:
            return b"", 0
        out: List[bytes] = []
        count = 0
        shard = self._shard_of(offset)
        skip = offset - shard * self.shard_records
        while count < max_records:
            path = self.shard_path(shard)
            if not path.is_file():
                break
            with open(path, "rb") as fh:
                for raw in fh:
                    if skip > 0:
                        skip -= 1
                        continue
                    if offset + count >= records or count >= max_records:
                        break
                    out.append(raw)
                    count += 1
            if offset + count >= records:
                break
            shard += 1
            skip = 0
        return b"".join(out), count

    # -- manifest -------------------------------------------------------------
    def write_manifest(
        self, base: Dict[str, Any], complete: bool = False,
        fsync: bool = False,
    ) -> Dict[str, Any]:
        """Atomically (re)write the manifest for the current prefix.

        *base* carries the deterministic provenance fields (job id, spec
        document, machine fingerprint, points total/digest).  A complete
        manifest additionally records per-shard SHA-256s and the digest
        of the whole concatenated result stream — computed streamingly,
        never holding more than one line.
        """
        self.flush(fsync=fsync)
        doc = dict(base)
        doc["format"] = MANIFEST_FORMAT
        doc["version"] = 1
        doc["shard_records"] = self.shard_records
        doc["points_done"] = self.records
        doc["complete"] = bool(complete)
        shards: List[Dict[str, Any]] = []
        results_sha = hashlib.sha256() if complete else None
        for s, name in enumerate(self.shard_names()):
            first = s * self.shard_records
            entry: Dict[str, Any] = {
                "name": name,
                "records": min(self.records - first, self.shard_records),
            }
            if results_sha is not None:
                shard_sha = hashlib.sha256()
                with open(self.shard_dir / name, "rb") as fh:
                    for block in iter(lambda: fh.read(1 << 20), b""):
                        shard_sha.update(block)
                        results_sha.update(block)
                entry["sha256"] = shard_sha.hexdigest()
            shards.append(entry)
        doc["shards"] = shards
        if results_sha is not None:
            doc["results_sha256"] = results_sha.hexdigest()
        atomic_write_json(self.manifest_path, doc, fsync=fsync)
        return doc

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        return read_json(self.manifest_path)
