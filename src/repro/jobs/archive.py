"""Post-run archiver: content-addressed packing of a finished job.

``archive_job`` copies a completed job's durable artifacts — result
shards, the sealed manifest, the spec/run configuration, and (when
present) the repo's ``BENCH_verify.json`` perf snapshot plus a snapshot
of the live metrics registry — into a directory named by the SHA-256 of
the sealed manifest.  Because the manifest already digests every shard
and carries the spec and machine fingerprint, that one hash addresses
the entire result set: two archives with the same name are bitwise the
same sweep, which is what lets the ``jobs-smoke`` CI diff a resumed
run's archive against a single-shot one by name alone.

The archive is built in a temp directory and renamed into place, so a
partially-written archive is never observable under its final name; an
archive that already exists is trusted (content addressing makes
re-packing a no-op by construction).
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import SpecError
from ..telemetry.state import get_telemetry
from .store import SHARD_DIR, atomic_write_json, read_json

__all__ = ["ARCHIVE_FORMAT", "archive_job"]

#: Archive index document format tag.
ARCHIVE_FORMAT = "repro-jobs-archive"

#: Hex digits of the manifest digest used as the archive directory name.
_ADDR_LEN = 16


def _file_sha256(path: Path) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


def archive_job(
    directory: "Path | str",
    bench_path: "Path | str | None" = None,
    out_root: "Path | str | None" = None,
) -> Path:
    """Pack the completed job in *directory*; returns the archive path.

    Raises :class:`~repro.errors.SpecError` unless the job's manifest is
    sealed (``complete: true``) — archiving a moving target would pin a
    content address to bytes that are still changing.
    """
    directory = Path(directory)
    manifest_file = directory / "manifest.json"
    manifest = read_json(manifest_file)
    if not isinstance(manifest, dict) or not manifest.get("complete"):
        raise SpecError(
            f"{directory} has no sealed manifest; only DONE jobs archive"
        )
    content_id = _file_sha256(manifest_file)
    out_root = Path(out_root) if out_root else directory / "archive"
    out_dir = out_root / content_id[:_ADDR_LEN]
    if out_dir.is_dir():
        return out_dir  # content-addressed: already packed

    out_root.mkdir(parents=True, exist_ok=True)
    tmp = Path(
        tempfile.mkdtemp(prefix=".packing-", dir=str(out_root))
    )
    try:
        files: Dict[str, str] = {}

        def pack(source: Path, arcname: str) -> None:
            target = tmp / arcname
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(source, target)
            files[arcname] = _file_sha256(target)

        pack(manifest_file, "manifest.json")
        pack(directory / "spec.json", "spec.json")
        checkpoint = directory / "checkpoint.json"
        if checkpoint.is_file():
            pack(checkpoint, "checkpoint.json")
        for entry in manifest.get("shards", []):
            name = entry.get("name")
            if name:
                pack(directory / SHARD_DIR / name, f"{SHARD_DIR}/{name}")
        if bench_path is None:
            from ..verify.perfgate import default_baseline_path

            bench_path = default_baseline_path()
        bench_path = Path(bench_path)
        if bench_path.is_file():
            pack(bench_path, "BENCH_verify.json")
        # Telemetry snapshot: whatever counters/gauges this process has
        # accumulated by archive time (checkpoints, cache traffic, ...).
        telemetry: Dict[str, Any] = {
            "metrics": get_telemetry().registry.snapshot(),
        }
        (tmp / "telemetry.json").write_text(
            json.dumps(telemetry, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        files["telemetry.json"] = _file_sha256(tmp / "telemetry.json")
        atomic_write_json(
            tmp / "ARCHIVE.json",
            {
                "format": ARCHIVE_FORMAT,
                "version": 1,
                "content_id": content_id,
                "job_id": manifest.get("job_id"),
                "points_total": manifest.get("points_total"),
                "results_sha256": manifest.get("results_sha256"),
                "files": files,
            },
        )
        try:
            tmp.rename(out_dir)
        except OSError:
            if out_dir.is_dir():  # lost a benign race to another packer
                shutil.rmtree(tmp, ignore_errors=True)
            else:
                raise
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return out_dir
