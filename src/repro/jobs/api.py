"""Typed job specs and API documents for the job-lifecycle front end.

A :class:`JobSpec` describes one streaming sweep job as the cartesian
grid ``teams x v x threads`` over a paper case — the shape
``reproduce_paper.py`` sweeps, scaled to grids that no longer fit one
process's memory or lifetime.  Points enumerate lazily in a fixed
nested order (teams outermost, threads innermost), so a million-point
job costs a few lists of axis values in its spec, never a million
payloads in memory, and every restart replays the identical sequence.

Parsing mirrors :mod:`repro.service.api`: strict types and bounds,
unknown fields rejected loudly (a typo'd ``"trails"`` must never turn
into a silently-default job), everything raising
:class:`~repro.errors.SpecError` which the HTTP layer maps to 400.

Identity: ``spec_digest`` is the :func:`repro.verify.fuzzer.case_digest`
of the spec document, and a job id folds in the machine fingerprint —
submitting the same spec to the same machine is idempotent (you get the
existing job back, resumable), while a changed grid or config is a new
job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.cases import PAPER_CASES, case_by_name
from ..core.optimized import KernelConfig
from ..errors import SpecError
from ..openmp.reduction_ops import (
    ALL_REDUCTION_IDENTIFIERS,
    validate_reduction,
)
from ..verify.fuzzer import case_digest

#: Matches :data:`repro.service.api.MAX_TRIALS` (not imported: the
#: service layer imports this package for its job routes, and a
#: module-level import back would cycle).
MAX_TRIALS = 100_000

__all__ = ["JobSpec", "parse_job_spec"]

#: Ceiling on total points per job — a backstop against a typo'd grid,
#: far above the "1000x reproduce_paper.py" target scale.
MAX_POINTS = 100_000_000

#: Ceiling on entries per axis list.
_MAX_AXIS = 65536

#: teams/v must be powers of two <= this (the simulator's launch bound).
_MAX_TEAMS = 1 << 26

_CASE_NAMES = tuple(case.name for case in PAPER_CASES)


def _is_pow2(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class JobSpec:
    """One durable streaming-sweep job (validated, immutable)."""

    case: str = "C1"
    teams: Tuple[int, ...] = (4096,)
    v: Tuple[int, ...] = (4,)
    threads: Tuple[int, ...] = (256,)
    trials: int = 200
    verify: bool = False
    checkpoint_interval: int = 1024
    shard_records: int = 8192
    label: str = ""
    archive: bool = False
    op: str = "+"

    # -- documents ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "case": self.case,
            "teams": list(self.teams),
            "v": list(self.v),
            "threads": list(self.threads),
            "trials": self.trials,
            "verify": self.verify,
            "checkpoint_interval": self.checkpoint_interval,
            "shard_records": self.shard_records,
            "label": self.label,
            "archive": self.archive,
        }
        # Emitted only for extended identifiers: resumable sum jobs on
        # disk keep their spec digests (and therefore their job ids).
        if self.op != "+":
            doc["op"] = self.op
        return doc

    @property
    def spec_digest(self) -> str:
        return case_digest(self.to_dict())

    def job_id(self, machine_fingerprint: str) -> str:
        """Deterministic job id: same spec + same machine -> same job."""
        return "j" + case_digest(
            {"spec": self.to_dict(), "machine": machine_fingerprint}
        )

    # -- enumeration ----------------------------------------------------------
    def total_points(self) -> int:
        return len(self.teams) * len(self.v) * len(self.threads)

    def points(self) -> Iterator[Tuple[int, int, int]]:
        """Lazy ``(teams, v, threads)`` tuples in canonical nested order."""
        for teams in self.teams:
            for v in self.v:
                for threads in self.threads:
                    yield teams, v, threads

    def payloads(self) -> Iterator[tuple]:
        """Lazy ``gpu_point`` executor payloads in point order.

        Sum jobs build the historical 4-tuples (cache-fingerprint
        stable); extended identifiers append the op element.
        """
        case = case_by_name(self.case)
        for teams, v, threads in self.points():
            base = (
                case,
                KernelConfig(teams=teams, v=v, threads=threads),
                self.trials,
                self.verify,
            )
            yield base if self.op == "+" else base + (self.op,)

    def point_digests(self, machine_fingerprint: str) -> Iterator[str]:
        """Lazy canonical per-point digests (the checkpoint/resume key).

        Built with the public :func:`repro.verify.fuzzer.case_digest`
        over the point's full parameter document, including the machine
        fingerprint — a resumed job on a reconfigured machine mismatches
        on the very first line instead of splicing incompatible results.
        """
        for teams, v, threads in self.points():
            doc: Dict[str, Any] = {
                "kind": "gpu_point",
                "machine": machine_fingerprint,
                "case": self.case,
                "teams": teams,
                "v": v,
                "threads": threads,
                "trials": self.trials,
                "verify": self.verify,
            }
            if self.op != "+":
                doc["op"] = self.op
            yield case_digest(doc)

    def points_digest(self, machine_fingerprint: str) -> str:
        """SHA-256 over the whole per-point digest stream (incremental).

        The manifest's canonical case-list digest: computed streamingly
        so a 100M-point job never materializes its point list.
        """
        import hashlib

        sha = hashlib.sha256()
        for digest in self.point_digests(machine_fingerprint):
            sha.update(digest.encode("ascii"))
            sha.update(b"\n")
        return sha.hexdigest()


def _int_list(value: Any, name: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise SpecError(f"{name} must be a non-empty list of integers")
    if len(value) > _MAX_AXIS:
        raise SpecError(
            f"{name} has {len(value)} entries (max {_MAX_AXIS})"
        )
    out = []
    for entry in value:
        if isinstance(entry, bool) or not isinstance(entry, int):
            raise SpecError(f"{name} entries must be integers, got {entry!r}")
        out.append(entry)
    return tuple(out)


def _int_field(value: Any, name: str, lo: int, hi: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise SpecError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


_FIELDS = frozenset(
    (
        "case", "teams", "v", "threads", "trials", "verify",
        "checkpoint_interval", "shard_records", "label", "archive", "op",
    )
)


def parse_job_spec(obj: Any) -> JobSpec:
    """Validate a JSON job-spec document into a :class:`JobSpec`."""
    if not isinstance(obj, dict):
        raise SpecError("job spec must be a JSON object")
    unknown = sorted(set(obj) - _FIELDS)
    if unknown:
        raise SpecError(
            f"unknown job spec fields {unknown}; expected a subset of "
            f"{sorted(_FIELDS)}"
        )
    case = obj.get("case", "C1")
    if case not in _CASE_NAMES:
        raise SpecError(
            f"case must be one of {list(_CASE_NAMES)}, got {case!r}"
        )
    teams = _int_list(obj.get("teams", [4096]), "teams")
    v = _int_list(obj.get("v", [4]), "v")
    threads = _int_list(obj.get("threads", [256]), "threads")
    for value in teams:
        if not _is_pow2(value) or value > _MAX_TEAMS:
            raise SpecError(
                f"teams entries must be powers of two <= {_MAX_TEAMS}, "
                f"got {value}"
            )
    for value in v:
        if not _is_pow2(value) or value > 64:
            raise SpecError(
                f"v entries must be powers of two <= 64, got {value}"
            )
    for value in threads:
        if not 1 <= value <= 1024:
            raise SpecError(
                f"threads entries must be in [1, 1024], got {value}"
            )
    if min(teams) < max(v):
        raise SpecError(
            f"every teams value must be >= every v value "
            f"(min teams {min(teams)} < max v {max(v)})"
        )
    label = obj.get("label", "")
    if not isinstance(label, str) or len(label) > 200:
        raise SpecError("label must be a string of at most 200 characters")
    verify = obj.get("verify", False)
    archive = obj.get("archive", False)
    if not isinstance(verify, bool) or not isinstance(archive, bool):
        raise SpecError("verify/archive must be booleans")
    op = obj.get("op", "+")
    if not isinstance(op, str):
        raise SpecError(f"op must be a string, got {op!r}")
    if op not in ALL_REDUCTION_IDENTIFIERS:
        raise SpecError(
            f"op must be one of {sorted(ALL_REDUCTION_IDENTIFIERS)}, "
            f"got {op!r}"
        )
    if op != "+":
        try:
            validate_reduction(op, case_by_name(case).result_type)
        except Exception as exc:
            raise SpecError(str(exc)) from exc
    spec = JobSpec(
        case=case,
        teams=teams,
        v=v,
        threads=threads,
        trials=_int_field(obj.get("trials", 200), "trials", 1, MAX_TRIALS),
        verify=verify,
        checkpoint_interval=_int_field(
            obj.get("checkpoint_interval", 1024),
            "checkpoint_interval", 1, 1_000_000,
        ),
        shard_records=_int_field(
            obj.get("shard_records", 8192), "shard_records", 1, 1_000_000
        ),
        label=label,
        archive=archive,
        op=op,
    )
    if spec.total_points() > MAX_POINTS:
        raise SpecError(
            f"grid has {spec.total_points()} points (max {MAX_POINTS})"
        )
    return spec
