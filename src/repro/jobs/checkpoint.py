"""Checkpoint documents: the durable progress marker of a running job.

A checkpoint is written atomically after every ``checkpoint_interval``
resolved points (and at cancel/pause), *after* the store has flushed the
same points, so the invariant on disk is always::

    durable shard prefix  >=  checkpoint.points_done

A crash therefore loses at most the lines buffered since the last
checkpoint — one interval — and never the checkpoint's own claim.  The
document is keyed by the job's spec digest and the canonical points
digest (built from :func:`repro.verify.fuzzer.case_digest` per point),
so a resume against a *different* spec or machine fingerprint is
detected instead of silently mixing result streams.

Resume does not trust the checkpoint count blindly: the store's
:meth:`~repro.jobs.store.ResultStore.recover` re-validates every durable
line against the spec's expected digest sequence, and the checkpoint is
only used as a cross-check (a durable prefix *shorter* than the
checkpoint claims means the directory was tampered with or the
filesystem lost acknowledged writes — a loud error, not a quiet rerun).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import SpecError
from .store import atomic_write_json, read_json

__all__ = [
    "CHECKPOINT_FORMAT",
    "read_checkpoint",
    "write_checkpoint",
]

#: Checkpoint document format tag.
CHECKPOINT_FORMAT = "repro-jobs-checkpoint"


def checkpoint_path(directory: "Path | str") -> Path:
    return Path(directory) / "checkpoint.json"


def write_checkpoint(
    directory: "Path | str",
    job_id: str,
    spec_digest: str,
    points_digest: str,
    points_done: int,
    points_total: int,
    fsync: bool = False,
) -> Dict[str, Any]:
    """Atomically write the checkpoint document; returns it."""
    doc = {
        "format": CHECKPOINT_FORMAT,
        "version": 1,
        "job_id": job_id,
        "spec_digest": spec_digest,
        "points_digest": points_digest,
        "points_done": int(points_done),
        "points_total": int(points_total),
    }
    atomic_write_json(checkpoint_path(directory), doc, fsync=fsync)
    return doc


def read_checkpoint(
    directory: "Path | str",
    job_id: Optional[str] = None,
    spec_digest: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """Load and sanity-check a checkpoint, or ``None`` when absent.

    When *job_id* / *spec_digest* are given, a checkpoint written for a
    different job or spec raises :class:`~repro.errors.SpecError` — the
    caller is about to append to shards that belong to someone else.
    """
    doc = read_json(checkpoint_path(directory))
    if doc is None:
        return None
    if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
        raise SpecError(
            f"{checkpoint_path(directory)} is not a jobs checkpoint"
        )
    if job_id is not None and doc.get("job_id") != job_id:
        raise SpecError(
            f"checkpoint belongs to job {doc.get('job_id')!r}, "
            f"not {job_id!r}"
        )
    if spec_digest is not None and doc.get("spec_digest") != spec_digest:
        raise SpecError(
            "checkpoint spec digest mismatch: the job directory was "
            "created from a different spec or machine configuration"
        )
    return doc
