"""grace-reduce: sum reduction with OpenMP offload on a simulated GH200.

Reproduction of Zheming Jin, *Sum Reduction with OpenMP Offload on NVIDIA
Grace-Hopper System* (SC 2024).  The package builds every substrate the
paper depends on — an OpenMP offload front end and runtime, a calibrated
H100 performance model, a Grace CPU model, and a page-granular
unified-memory subsystem — and reproduces each of the paper's tables and
figures on top of them (see DESIGN.md and EXPERIMENTS.md).

Quickstart
----------
>>> import numpy as np
>>> from repro import offload_sum
>>> r = offload_sum(np.arange(1024, dtype=np.int32), teams=1024, v=4)
>>> int(r.value)
523776
"""

from ._version import __version__, VERSION
from .config import DEFAULT_CONFIG, ReproConfig
from .dtypes import (
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    INT8,
    SCALAR_TYPES,
    ScalarType,
    scalar_type,
)
from .errors import (
    CanonicalLoopError,
    ClauseError,
    CompileError,
    DirectiveSyntaxError,
    LaunchError,
    MeasurementError,
    MemoryModelError,
    OpenMPError,
    ReproError,
    SpecError,
    VerificationError,
)
from .hardware import GraceHopperSystem, grace_hopper
from .core import (
    C1,
    C2,
    C3,
    C4,
    PAPER_CASES,
    AllocationSite,
    Case,
    KernelConfig,
    Machine,
    Measurement,
    OffloadReducer,
    OffloadResult,
    autotune,
    measure_coexec_sweep,
    measure_gpu_reduction,
    offload_sum,
    sweep_parameters,
    verify_result,
)

__all__ = [
    "__version__",
    "VERSION",
    "ReproConfig",
    "DEFAULT_CONFIG",
    "ScalarType",
    "scalar_type",
    "SCALAR_TYPES",
    "INT8",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "ReproError",
    "SpecError",
    "OpenMPError",
    "DirectiveSyntaxError",
    "ClauseError",
    "CanonicalLoopError",
    "CompileError",
    "MemoryModelError",
    "LaunchError",
    "MeasurementError",
    "VerificationError",
    "GraceHopperSystem",
    "grace_hopper",
    "Case",
    "C1",
    "C2",
    "C3",
    "C4",
    "PAPER_CASES",
    "Machine",
    "KernelConfig",
    "offload_sum",
    "OffloadReducer",
    "OffloadResult",
    "Measurement",
    "measure_gpu_reduction",
    "sweep_parameters",
    "autotune",
    "AllocationSite",
    "measure_coexec_sweep",
    "verify_result",
]
