"""NVHPC-style front end: validate + lower an annotated reduction loop.

The compile pipeline applied to a :class:`ReductionLoopProgram`:

1. parse the pragma (if given as text);
2. check the directive is an offloadable teams worksharing construct;
3. check OpenMP canonical loop form, then the NVHPC-specific increment
   restriction — Listing 4's ``i = i + V`` form is rejected with the
   paper's "loop increment is not in a supported form" diagnostic while
   the normalized Listing 5 compiles;
4. validate the reduction clause against the program's result type;
5. emit a :class:`CompiledReduction`, which resolves launch geometry
   against a device runtime at "run time" (clause expressions like
   ``num_teams(teams/V)`` bind late, as in the listings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple, Union

from ..dtypes import ScalarType, scalar_type
from ..errors import CanonicalLoopError, CompileError
from ..hardware.spec import GpuSpec
from ..openmp.canonical import ForLoop, check_canonical, nvhpc_supported
from ..openmp.directives import Directive
from ..openmp.parser import parse_pragma
from ..openmp.reduction_ops import required_arrays, validate_reduction
from ..openmp.runtime import DeviceRuntime, LaunchGeometry
from ..gpu.kernels import ReductionKernel
from ..gpu.strategies import ReductionStrategy
from ..telemetry.state import span as tele_span
from .diagnostics import (
    Diagnostic,
    NON_CANONICAL_LOOP,
    OPERAND_ARITY,
    Severity,
    UNSUPPORTED_INCREMENT,
)
from .flags import CompilerFlags

__all__ = ["ReductionLoopProgram", "CompiledReduction", "NvhpcCompiler"]


@dataclass(frozen=True)
class ReductionLoopProgram:
    """Source-level description of an annotated reduction loop.

    ``pragma`` may be the raw ``#pragma omp ...`` text or an already-parsed
    :class:`~repro.openmp.directives.Directive`.
    """

    pragma: Union[str, Directive]
    loop: ForLoop
    element_type: ScalarType
    result_type: ScalarType
    name: str = "sum_reduction"
    #: Input arrays the loop body reads per element (2 for a dot product).
    arrays: int = 1

    def directive(self) -> Directive:
        if isinstance(self.pragma, Directive):
            return self.pragma
        return parse_pragma(self.pragma)


@dataclass(frozen=True)
class CompiledReduction:
    """A successfully compiled offload reduction.

    Launch geometry binds late: :meth:`launch` evaluates symbolic clause
    arguments (``teams``, ``V``...) against *env* through the device
    runtime, exactly as the listings set them at run time.
    """

    directive: Directive
    loop: ForLoop
    element_type: ScalarType
    result_type: ScalarType
    identifier: str
    flags: CompilerFlags
    name: str
    diagnostics: Tuple[Diagnostic, ...] = field(default_factory=tuple)
    arrays: int = 1

    @property
    def unified_memory(self) -> bool:
        return self.flags.unified_memory

    def launch(
        self,
        runtime: DeviceRuntime,
        env: Optional[Mapping[str, int]] = None,
        strategy: "ReductionStrategy | None" = None,
    ) -> ReductionKernel:
        """Resolve geometry and produce the device kernel descriptor.

        ``strategy`` selects the reduction lowering; the default is the
        compiler's tree lowering (the paper's behaviour).
        """
        geometry: LaunchGeometry = runtime.resolve_launch(
            self.directive, self.loop, env
        )
        v = self.loop.elements_per_iteration
        return ReductionKernel(
            name=f"{self.name}_v{v}",
            geometry=geometry,
            elements=self.loop.total_elements,
            elements_per_iteration=v,
            element_type=self.element_type,
            result_type=self.result_type,
            identifier=self.identifier,
            strategy=strategy or ReductionStrategy.TREE,
            arrays=self.arrays,
        )


class NvhpcCompiler:
    """The front end.  Stateless apart from its flags."""

    def __init__(self, flags: Optional[CompilerFlags] = None):
        self.flags = flags or CompilerFlags.parse(["-O3", "-mp=gpu"])

    def compile(self, program: ReductionLoopProgram) -> CompiledReduction:
        """Compile *program* or raise :class:`~repro.errors.CompileError`.

        The raised error carries the diagnostics, including the
        unsupported-increment message for Listing-4-style loops.
        """
        with tele_span("compile", category="compiler",
                       program=program.name) as sp:
            compiled = self._compile(program)
            sp.set(diagnostics=len(compiled.diagnostics))
            return compiled

    def _compile(self, program: ReductionLoopProgram) -> CompiledReduction:
        directive = program.directive()
        diagnostics = []

        if not (directive.kind.is_offload and directive.kind.has_teams):
            raise CompileError(
                f"'#pragma omp {directive.kind.value}' does not offload a "
                "teams worksharing loop",
            )

        try:
            check_canonical(program.loop)
        except CanonicalLoopError as exc:
            diag = Diagnostic(Severity.ERROR, NON_CANONICAL_LOOP, str(exc))
            raise CompileError(str(exc), diagnostics=[diag]) from exc

        if not nvhpc_supported(program.loop):
            diag = Diagnostic(
                Severity.ERROR,
                UNSUPPORTED_INCREMENT,
                f"loop increment '{program.loop.increment_form}' with step "
                f"{program.loop.step} is not in a supported form; rewrite "
                "the loop with a unit step (see paper Listing 5)",
            )
            raise CompileError(diag.message, diagnostics=[diag])

        reduction = directive.reduction
        if reduction is None:
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "NVHPC-OMP-512",
                    "offloaded loop accumulates into a shared variable "
                    "without a reduction clause (race)",
                )
            )
            identifier = "+"
        else:
            identifier = reduction.identifier
        validate_reduction(identifier, program.result_type)
        if required_arrays(identifier) != program.arrays:
            diag = Diagnostic(
                Severity.ERROR,
                OPERAND_ARITY,
                f"reduction-identifier {identifier!r} consumes "
                f"{required_arrays(identifier)} input array(s), but the "
                f"program declares {program.arrays}",
            )
            raise CompileError(diag.message, diagnostics=[diag])

        element_type = scalar_type(program.element_type)
        result_type = scalar_type(program.result_type)
        return CompiledReduction(
            directive=directive,
            loop=program.loop,
            element_type=element_type,
            result_type=result_type,
            identifier=identifier,
            flags=self.flags,
            name=program.name,
            diagnostics=tuple(diagnostics),
            arrays=program.arrays,
        )
