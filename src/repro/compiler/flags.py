"""Compiler command-line flags (the subset the paper uses)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..errors import CompileError

__all__ = ["CompilerFlags"]


@dataclass(frozen=True)
class CompilerFlags:
    """Parsed NVHPC-style flags.

    The paper compiles with ``-O3`` and the OpenMP GPU target, adding
    ``-gpu=mem:unified`` for the Section IV experiments.
    """

    optimization: int = 3
    mp_target: str = "gpu"       # -mp=gpu | -mp=multicore
    unified_memory: bool = False  # -gpu=mem:unified
    raw: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.optimization <= 4:
            raise CompileError(f"unsupported optimization level -O{self.optimization}")
        if self.mp_target not in ("gpu", "multicore"):
            raise CompileError(f"unsupported -mp target {self.mp_target!r}")

    @classmethod
    def parse(cls, argv: Iterable[str]) -> "CompilerFlags":
        """Parse a flag list like ``["-O3", "-mp=gpu", "-gpu=mem:unified"]``."""
        optimization = 2
        mp_target = "gpu"
        unified = False
        raw = tuple(argv)
        for arg in raw:
            if arg.startswith("-O"):
                level = arg[2:]
                if not level.isdigit():
                    raise CompileError(f"malformed optimization flag {arg!r}")
                optimization = int(level)
            elif arg.startswith("-mp"):
                _, _, target = arg.partition("=")
                mp_target = target or "gpu"
            elif arg.startswith("-gpu="):
                options = arg[len("-gpu="):].split(",")
                for opt in options:
                    if opt == "mem:unified":
                        unified = True
                    elif opt in ("mem:separate", "mem:managed"):
                        unified = opt == "mem:managed"
                    else:
                        raise CompileError(f"unknown -gpu option {opt!r}")
            else:
                raise CompileError(f"unknown flag {arg!r}")
        return cls(
            optimization=optimization,
            mp_target=mp_target,
            unified_memory=unified,
            raw=raw,
        )

    def render(self) -> str:
        """Canonical command-line form."""
        parts = [f"-O{self.optimization}", f"-mp={self.mp_target}"]
        if self.unified_memory:
            parts.append("-gpu=mem:unified")
        return " ".join(parts)
