"""Process-wide compilation cache and shared compiler instance.

The sweep harnesses compile the *same* small family of programs over and
over: the baseline/optimized programs for a case differ only in clause
parameters, and a 60-point Figure 1 sweep re-derives 60 nearly identical
front-end results.  :func:`cached_compile` memoizes
:meth:`NvhpcCompiler.compile` on a content key of the program (pragma
text, loop shape, element/result types, flags) so compiled artifacts are
reused across sweep points, cases, and the :class:`~repro.core.reduce.
OffloadReducer` fast path.

The cache is safe because :class:`CompiledReduction` is an immutable
value object whose :meth:`~CompiledReduction.launch` binds geometry late —
re-launching a cached compilation is exactly as deterministic as
recompiling.

Thread safety: a single lock guards the table (sweep executors may compile
from worker threads); the shared default compiler is stateless apart from
its flags.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..telemetry.state import get_telemetry, span as tele_span
from .flags import CompilerFlags
from .nvhpc import CompiledReduction, NvhpcCompiler, ReductionLoopProgram

__all__ = [
    "default_compiler",
    "cached_compile",
    "compile_cache_stats",
    "clear_compile_cache",
]

_LOCK = threading.Lock()
_SHARED_COMPILER: Optional[NvhpcCompiler] = None
_CACHE: Dict[tuple, CompiledReduction] = {}
_HITS = 0
_MISSES = 0


def default_compiler() -> NvhpcCompiler:
    """The shared module-level compiler (default ``-O3 -mp=gpu`` flags)."""
    global _SHARED_COMPILER
    with _LOCK:
        if _SHARED_COMPILER is None:
            _SHARED_COMPILER = NvhpcCompiler()
        return _SHARED_COMPILER


def _flags_key(flags: CompilerFlags) -> tuple:
    return (flags.optimization, flags.mp_target, flags.unified_memory)


def _program_key(program: ReductionLoopProgram, flags: CompilerFlags) -> tuple:
    pragma = program.pragma
    pragma_text = pragma if isinstance(pragma, str) else str(pragma)
    loop = program.loop
    return (
        pragma_text,
        loop.var,
        loop.trip_count,
        loop.step,
        loop.increment_form,
        loop.elements_per_iteration,
        loop.test_op,
        str(program.element_type),
        str(program.result_type),
        program.name,
        _flags_key(flags),
    )


def cached_compile(
    program: ReductionLoopProgram,
    compiler: Optional[NvhpcCompiler] = None,
) -> CompiledReduction:
    """Compile *program*, reusing a prior compilation of identical content.

    ``compiler=None`` uses the shared :func:`default_compiler`.  Failed
    compilations are not cached (they raise, as before).
    """
    global _HITS, _MISSES
    comp = compiler or default_compiler()
    key = _program_key(program, comp.flags)
    telemetry = get_telemetry()
    with _LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _HITS += 1
    if hit is not None:
        if telemetry.enabled:
            telemetry.registry.counter("compiler.cache.hits").add(1)
            # A hit is still a timeline event: a warm-cache run shows
            # where compilations were reused instead of an empty lane.
            with tele_span(
                "compile.cached", category="compiler", program=program.name
            ):
                pass
        return hit
    compiled = comp.compile(program)
    with _LOCK:
        _MISSES += 1
        _CACHE.setdefault(key, compiled)
    if telemetry.enabled:
        telemetry.registry.counter("compiler.cache.misses").add(1)
    return compiled


def compile_cache_stats() -> Tuple[int, int, int]:
    """(hits, misses, entries) of the process-wide compile cache."""
    with _LOCK:
        return _HITS, _MISSES, len(_CACHE)


def clear_compile_cache() -> None:
    """Drop all cached compilations and reset the counters."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
