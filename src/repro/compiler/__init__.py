"""An NVHPC-flavoured OpenMP offload front end (model).

Mirrors the toolchain behaviour the paper depends on:

* command-line flags (``-O3``, ``-mp=gpu``, ``-gpu=mem:unified``) — the UM
  switch changes how data clauses lower (§IV.A);
* canonical-loop diagnostics, including the vendor-specific rejection of
  Listing 4's ``i = i + V`` increment ("the loop increment is not in a
  supported form");
* lowering of an annotated reduction loop to a
  :class:`~repro.gpu.kernels.ReductionKernel` via the device runtime's
  launch resolution.
"""

from .cache import (
    cached_compile,
    clear_compile_cache,
    compile_cache_stats,
    default_compiler,
)
from .flags import CompilerFlags
from .diagnostics import Diagnostic, Severity
from .nvhpc import NvhpcCompiler, CompiledReduction, ReductionLoopProgram

__all__ = [
    "CompilerFlags",
    "Diagnostic",
    "Severity",
    "NvhpcCompiler",
    "CompiledReduction",
    "ReductionLoopProgram",
    "cached_compile",
    "clear_compile_cache",
    "compile_cache_stats",
    "default_compiler",
]
