"""Compiler diagnostics."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One front-end message."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.severity.value} [{self.code}]: {self.message}"


#: Diagnostic code for the vendor's unsupported-increment rejection — the
#: behaviour the paper reports for Listing 4.
UNSUPPORTED_INCREMENT = "NVHPC-OMP-134"

#: Diagnostic code for non-canonical loops (standard violation).
NON_CANONICAL_LOOP = "OMP-CANON-001"

#: Diagnostic code for an operand-arity mismatch: a two-array reduction
#: identifier (``dot``) compiled against a program that declares a single
#: input array, or vice versa.
OPERAND_ARITY = "NVHPC-OMP-201"
