"""A supervised worker pool: heartbeats, timeouts, restarts, quarantine.

``concurrent.futures.ProcessPoolExecutor`` declares the whole pool
broken the moment one worker dies; for a resilience layer we need the
opposite — a crashed or hung worker is an *expected* event that costs
one restart and one bounded re-execution, never the sweep.  This pool
therefore manages its workers directly:

* **per-worker pipes** — a killed worker can only lose its own channel;
  a shared queue could be poisoned by a worker killed while holding the
  queue lock.
* **heartbeats** — workers stamp a lock-free shared array
  (``[last_beat, task_started]`` per slot) so the supervisor can tell a
  hung worker from a slow one without any cooperation from the task.
* **result checksums** — workers checksum each record *before* handing
  it over; the supervisor re-verifies, so a corrupted result (the
  ``wrong_result`` injection, or a real stray write) is detected and
  re-executed rather than silently collated.  This is the mechanism
  behind the chaos harness's "zero silently-wrong results" invariant.
* **bounded re-execution** — a task is retried ``max_task_retries``
  times across crashes/errors/corruption, then *quarantined*: it
  resolves to an explicit failure record (``{"failed": true, ...}``)
  so one poison point cannot abort or starve the sweep.
* **per-task timeout** — a task exceeding ``task_timeout_s`` kills its
  worker and resolves immediately as failed (a pathological config
  would time out on every retry, so none are attempted).

Worker crash/hang/slow/wrong-result faults inject at the
``worker.task`` point inside the worker process (see
:mod:`repro.faults.injector`), which forked and spawned workers inherit
through ``REPRO_FAULTS``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.flight import flight
from ..sweep.fingerprint import canonical_json
from ..telemetry.state import get_telemetry, metrics, span as tele_span
from .injector import active_plan, fire

__all__ = ["SupervisedWorkerPool", "failure_record", "record_checksum"]


def record_checksum(record: Any) -> str:
    """SHA-256 over the canonical JSON of a result record."""
    return hashlib.sha256(canonical_json(record).encode("utf-8")).hexdigest()


def failure_record(kind: str, message: str, attempts: int = 1) -> dict:
    """The explicit failed-point record a quarantined task resolves to.

    Shaped so downstream consumers (``gpu_bandwidths``, figure tuning,
    ``_sweep_from_record``) keep working: a failed point contributes
    zero bandwidth and an empty measurement list, never a KeyError.
    The service refuses to serve these as ``ok`` and the executor never
    caches them.
    """
    record: Dict[str, Any] = {
        "failed": True, "error": message, "attempts": attempts,
    }
    if kind == "gpu_point":
        record.update(
            {"bandwidth_gbs": 0.0, "elapsed_seconds": 0.0, "value": None}
        )
    elif kind == "coexec_sweep":
        record["measurements"] = []
    return record


def _corrupt_record(record: Any) -> Any:
    """Deterministically damage a record (the ``wrong_result`` mode)."""
    if isinstance(record, dict):
        bad = dict(record)
        for key, value in bad.items():
            if isinstance(value, float):
                bad[key] = value + 1.0
                return bad
        bad["__corrupted__"] = True
        return bad
    return {"__corrupted__": True, "original": record}


def _pool_worker_main(
    spec: Any,
    tasks: Dict[str, Callable[[Any, tuple], dict]],
    conn: "connection.Connection",
    beats: Any,
    slot: int,
    generation: int = 0,
) -> None:
    """Worker loop: beat, receive a task, run it, send the result back."""
    try:
        machine = spec.build()
    except BaseException as exc:  # pragma: no cover - catastrophic init
        try:
            conn.send((-1, "error", f"worker init failed: {exc}", None, None))
        finally:
            return
    plan = active_plan()
    if plan is not None:
        # Each spawn (initial slot or restart) continues the seeded
        # fault sequence from its own offset; replaying probe 0 would
        # make a first-draw crash rule kill every replacement worker.
        plan.advance(generation)
    telemetry = get_telemetry()
    while True:
        beats[2 * slot] = time.time()
        try:
            if not conn.poll(0.2):
                continue
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        task_id, kind, payload = msg
        beats[2 * slot + 1] = time.time()
        mark = telemetry.recorder.mark() if telemetry.enabled else None
        try:
            mangle = False
            decision = fire("worker.task")
            if decision is not None:
                if decision.mode == "crash":
                    os._exit(3)
                elif decision.mode == "hang":
                    time.sleep(
                        decision.delay_s
                        if decision.delay_s is not None else 3600.0
                    )
                elif decision.mode == "slow":
                    time.sleep(
                        decision.delay_s
                        if decision.delay_s is not None else 0.05
                    )
                elif decision.mode == "wrong_result":
                    mangle = True
            with tele_span("sweep.point", category="sweep", kind=kind,
                           worker=True):
                record = tasks[kind](machine, payload)
            # Checksum the *true* record first: a wrong_result injection
            # (or any later corruption) must be visible as a mismatch.
            checksum = record_checksum(record)
            if mangle:
                record = _corrupt_record(record)
            spans = (
                telemetry.recorder.export_since(mark)
                if telemetry.enabled else None
            )
            conn.send((task_id, "ok", record, checksum, spans))
        except BaseException as exc:
            try:
                conn.send((
                    task_id, "error",
                    f"{type(exc).__name__}: {exc}", None, None,
                ))
            except (OSError, ValueError):
                return
        finally:
            beats[2 * slot + 1] = 0.0


class _WorkerHandle:
    __slots__ = ("proc", "conn", "slot")

    def __init__(self, proc, conn, slot: int):
        self.proc = proc
        self.conn = conn
        self.slot = slot


class SupervisedWorkerPool:
    """Crash/hang-tolerant process pool for sweep task functions.

    Parameters
    ----------
    spec:
        Picklable machine recipe (``MachineSpec``); each worker builds
        its own machine from it.
    tasks:
        ``kind -> task function`` table (module-level functions so they
        pickle under spawn).
    workers:
        Pool width (>= 1).
    task_timeout_s:
        Wall-clock budget per task; exceeding it kills the worker and
        resolves the point as failed.  ``None`` disables the deadline.
    heartbeat_timeout_s:
        Liveness bound: a worker silent for this long (mid-task with no
        completion, or idle with a stale beat) is presumed hung and
        restarted; its task is re-executed (bounded).
    max_task_retries:
        Re-executions allowed per task across crashes/errors/corruption
        before quarantine.
    restart_limit:
        Worker restarts allowed within one :meth:`run` call; ``None``
        scales with the work (``max(16, 2*workers + 3*len(payloads))``).
        Exhausting it raises ``RuntimeError`` (callers fall back to the
        serial path).
    """

    def __init__(
        self,
        spec: Any,
        tasks: Dict[str, Callable[[Any, tuple], dict]],
        workers: int,
        task_timeout_s: Optional[float] = None,
        heartbeat_timeout_s: float = 30.0,
        max_task_retries: int = 2,
        restart_limit: Optional[int] = None,
        poll_s: float = 0.05,
        registry=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.tasks = tasks
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_task_retries = max_task_retries
        self.restart_limit = restart_limit
        self.poll_s = poll_s
        self.registry = registry if registry is not None else metrics()
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._beats = self._ctx.Array("d", 2 * workers, lock=False)
        self._generation = 0
        self._handles: List[_WorkerHandle] = [
            self._spawn(slot) for slot in range(workers)
        ]
        self._closed = False
        self.restarts = 0
        # One run at a time: the supervision loop owns the worker
        # handles, so concurrent callers (e.g. a hedged dispatch racing
        # its primary) serialize here instead of corrupting assignments.
        self._run_lock = threading.Lock()

    # -- worker lifecycle -----------------------------------------------------
    def _spawn(self, slot: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        self._beats[2 * slot] = time.time()
        self._beats[2 * slot + 1] = 0.0
        generation = self._generation
        self._generation += 1
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                self.spec, self.tasks, child_conn, self._beats, slot,
                generation,
            ),
            daemon=True,
            name=f"repro-sweep-worker-{slot}",
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(proc, parent_conn, slot)

    def _restart(self, handle: _WorkerHandle, budget: List[int]) -> None:
        if budget[0] <= 0:
            raise RuntimeError(
                "sweep worker restart budget exhausted "
                f"(after {self.restarts} restarts)"
            )
        budget[0] -= 1
        try:
            handle.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover
            pass
        handle.proc.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        fresh = self._spawn(handle.slot)
        self._handles[handle.slot] = fresh
        self.restarts += 1
        self.registry.counter("sweep.pool.restarts").add(1)

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.conn.send(None)
            except (OSError, ValueError):
                pass
        for handle in self._handles:
            handle.proc.join(timeout=1.0)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- execution ------------------------------------------------------------
    def run(
        self, kind: str, payloads: Sequence[tuple]
    ) -> Tuple[List[dict], List[dict]]:
        """Resolve every payload to a record; returns (records, spans).

        Every index resolves — to a computed record or an explicit
        failure record — unless the restart budget collapses, which
        raises for the caller's serial fallback.
        """
        if self._closed:
            raise RuntimeError("supervised worker pool is closed")
        with self._run_lock:
            return self._run_supervised(kind, payloads)

    def _run_supervised(
        self, kind: str, payloads: Sequence[tuple]
    ) -> Tuple[List[dict], List[dict]]:
        n = len(payloads)
        results: List[Optional[dict]] = [None] * n
        done = [False] * n
        attempts = [0] * n
        pending: deque = deque(range(n))
        assigned: Dict[int, Tuple[int, float]] = {}  # slot -> (task, started)
        spans_out: List[dict] = []
        remaining = n
        black_box = flight()
        budget = [
            self.restart_limit
            if self.restart_limit is not None
            else max(16, 2 * self.workers + 3 * n)
        ]

        def finish(task_id: int, record: dict) -> None:
            nonlocal remaining
            if not done[task_id]:
                results[task_id] = record
                done[task_id] = True
                remaining -= 1

        def retry_or_quarantine(task_id: int, message: str) -> None:
            if done[task_id]:
                return
            attempts[task_id] += 1
            if attempts[task_id] > self.max_task_retries:
                self.registry.counter("sweep.pool.quarantined").add(1)
                finish(
                    task_id,
                    failure_record(kind, message, attempts=attempts[task_id]),
                )
            else:
                self.registry.counter("sweep.pool.retries").add(1)
                pending.append(task_id)

        while remaining:
            # 1. hand work to idle workers.
            if pending:
                for handle in self._handles:
                    if not pending:
                        break
                    if handle.slot in assigned:
                        continue
                    task_id = pending[0]
                    if done[task_id]:
                        pending.popleft()
                        continue
                    try:
                        handle.conn.send((task_id, kind, payloads[task_id]))
                    except (OSError, ValueError):
                        continue  # dead worker; the health check reaps it
                    pending.popleft()
                    assigned[handle.slot] = (task_id, time.time())
                    if black_box.enabled:
                        black_box.record(
                            "pool", "task_assigned",
                            task=task_id, kind=kind, slot=handle.slot,
                            worker_pid=handle.proc.pid,
                            attempt=attempts[task_id] + 1,
                        )
            # 2. drain completed results.
            busy = [
                h.conn for h in self._handles if h.slot in assigned
            ]
            for ready in connection.wait(busy, timeout=self.poll_s) if busy else ():
                handle = next(
                    h for h in self._handles if h.conn is ready
                )
                try:
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    continue  # worker died; the health check reaps it
                task_id, status, record, checksum, spans = msg
                if task_id < 0:
                    # Worker announced init failure: requeue whatever it
                    # held; the health check restarts it on EOF/death.
                    entry = assigned.pop(handle.slot, None)
                    if entry is not None and not done[entry[0]]:
                        pending.append(entry[0])
                    continue
                assigned.pop(handle.slot, None)
                if spans:
                    spans_out.extend(spans)
                if done[task_id]:
                    continue
                if status == "ok":
                    if checksum != record_checksum(record):
                        self.registry.counter(
                            "sweep.pool.wrong_results_detected"
                        ).add(1)
                        retry_or_quarantine(
                            task_id,
                            "result failed checksum verification "
                            "(corrupted in worker)",
                        )
                    else:
                        finish(task_id, record)
                else:
                    self.registry.counter("sweep.pool.task_errors").add(1)
                    retry_or_quarantine(task_id, str(record))
            # 3. health check: crashed, timed-out, and hung workers.
            now = time.time()
            for handle in list(self._handles):
                entry = assigned.get(handle.slot)
                if not handle.proc.is_alive():
                    self.registry.counter("sweep.pool.worker_crashes").add(1)
                    assigned.pop(handle.slot, None)
                    if black_box.enabled:
                        black_box.record(
                            "pool", "worker_crash",
                            slot=handle.slot,
                            worker_pid=handle.proc.pid,
                            exitcode=handle.proc.exitcode,
                            task=entry[0] if entry is not None else None,
                            kind=kind,
                            elapsed_s=(
                                round(now - entry[1], 6)
                                if entry is not None else None
                            ),
                        )
                        black_box.dump(
                            "worker_crash",
                            slot=handle.slot,
                            worker_pid=handle.proc.pid,
                            exitcode=handle.proc.exitcode,
                            task=entry[0] if entry is not None else None,
                            kind=kind,
                        )
                    if entry is not None:
                        retry_or_quarantine(
                            entry[0],
                            f"worker died mid-task (exit "
                            f"{handle.proc.exitcode})",
                        )
                    self._restart(handle, budget)
                    continue
                if entry is not None:
                    task_id, started = entry
                    elapsed = now - started
                    if (
                        self.task_timeout_s is not None
                        and elapsed > self.task_timeout_s
                    ):
                        self.registry.counter("sweep.pool.task_timeouts").add(1)
                        assigned.pop(handle.slot, None)
                        if black_box.enabled:
                            black_box.record(
                                "pool", "task_timeout",
                                task=task_id, kind=kind, slot=handle.slot,
                                elapsed_s=round(elapsed, 6),
                            )
                        finish(
                            task_id,
                            failure_record(
                                kind,
                                f"task exceeded {self.task_timeout_s:g}s "
                                "timeout",
                                attempts=attempts[task_id] + 1,
                            ),
                        )
                        self._restart(handle, budget)
                    elif (
                        self.task_timeout_s is None
                        and elapsed > self.heartbeat_timeout_s
                    ):
                        self.registry.counter("sweep.pool.hangs_detected").add(1)
                        assigned.pop(handle.slot, None)
                        if black_box.enabled:
                            black_box.record(
                                "pool", "worker_hang",
                                task=task_id, kind=kind, slot=handle.slot,
                                elapsed_s=round(elapsed, 6),
                            )
                        retry_or_quarantine(
                            task_id,
                            f"worker heartbeat lost after {elapsed:.1f}s "
                            "(hung)",
                        )
                        self._restart(handle, budget)
                elif (
                    now - self._beats[2 * handle.slot]
                    > max(self.heartbeat_timeout_s, 1.0)
                ):
                    # Idle worker that stopped beating: its recv loop is
                    # stuck; replace it before it is handed a task.
                    self.registry.counter("sweep.pool.hangs_detected").add(1)
                    self._restart(handle, budget)
        return results, spans_out  # type: ignore[return-value]
