"""Seeded, rule-based fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule`\\ s parsed
from a compact spec string::

    seed=7;worker.task:crash@0.1;cache.get:corrupt@0.05:count=3

``spec ::= clause (';' clause)*`` where a clause is either ``seed=N`` or
``point:mode[@rate][:key=value]*``:

``point``
    The injection-point name (``worker.task``, ``cache.get``,
    ``cache.put``, ``service.http``, ``scheduler.dispatch``,
    ``chaos.client``); :mod:`fnmatch` wildcards match families
    (``cache.*``).
``mode``
    What to inject; the catalog per point lives in docs/RESILIENCE.md.
``rate``
    Firing probability in ``(0, 1]``; omitted means always fire.
``count=N`` / ``after=N`` / ``delay=SECONDS``
    Stop after *N* firings / skip the first *N* probes / how long
    ``slow``-style modes stall.

Decisions are **deterministic**: each rule keeps its own probe counter,
and the draw for probe *n* of rule *i* is a pure function of
``(seed, i, point, n)`` — the same plan replays the same fault sequence
per injection point no matter how threads interleave, which is what
makes chaos runs reproducible and the hypothesis re-execution property
testable.  The first rule that fires wins; rules that pass (by rate,
``count`` exhaustion, or ``after``) fall through, so layered specs
compose.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from ..errors import SpecError

__all__ = ["FaultDecision", "FaultPlan", "FaultRule"]

_KNOWN_PARAMS = ("count", "after", "delay")


@dataclass(frozen=True)
class FaultRule:
    """One parsed clause of a fault spec."""

    point: str
    mode: str
    rate: float = 1.0
    count: Optional[int] = None
    after: int = 0
    delay_s: Optional[float] = None

    def matches(self, point: str) -> bool:
        return self.point == point or fnmatchcase(point, self.point)

    def describe(self) -> str:
        text = f"{self.point}:{self.mode}@{self.rate:g}"
        if self.count is not None:
            text += f":count={self.count}"
        if self.after:
            text += f":after={self.after}"
        if self.delay_s is not None:
            text += f":delay={self.delay_s:g}"
        return text


@dataclass(frozen=True)
class FaultDecision:
    """The outcome of a probe that fired: what to inject, and how."""

    point: str
    mode: str
    delay_s: Optional[float] = None
    rule: int = 0


def _parse_clause(clause: str, index: int) -> FaultRule:
    parts = clause.split(":")
    point = parts[0].strip()
    if len(parts) < 2 or not point:
        raise SpecError(
            f"fault clause {clause!r} must look like point:mode[@rate]"
            "[:key=value]*"
        )
    mode_part = parts[1].strip()
    mode, _, rate_text = mode_part.partition("@")
    mode = mode.strip()
    if not mode:
        raise SpecError(f"fault clause {clause!r} has an empty mode")
    rate = 1.0
    if rate_text:
        try:
            rate = float(rate_text)
        except ValueError:
            raise SpecError(
                f"fault rate {rate_text!r} in {clause!r} is not a number"
            ) from None
        if not 0.0 < rate <= 1.0:
            raise SpecError(
                f"fault rate must be in (0, 1], got {rate} in {clause!r}"
            )
    params: Dict[str, str] = {}
    for raw in parts[2:]:
        key, eq, value = raw.partition("=")
        key = key.strip()
        if not eq or key not in _KNOWN_PARAMS:
            raise SpecError(
                f"unknown fault parameter {raw!r} in {clause!r} "
                f"(expected one of {_KNOWN_PARAMS})"
            )
        params[key] = value.strip()
    try:
        count = int(params["count"]) if "count" in params else None
        after = int(params.get("after", "0"))
        delay_s = float(params["delay"]) if "delay" in params else None
    except ValueError as exc:
        raise SpecError(f"bad fault parameter in {clause!r}: {exc}") from None
    if count is not None and count < 1:
        raise SpecError(f"count must be >= 1 in {clause!r}")
    if after < 0:
        raise SpecError(f"after must be >= 0 in {clause!r}")
    if delay_s is not None and delay_s < 0:
        raise SpecError(f"delay must be >= 0 in {clause!r}")
    return FaultRule(
        point=point, mode=mode, rate=rate,
        count=count, after=after, delay_s=delay_s,
    )


@dataclass
class FaultPlan:
    """An ordered, seeded rule set with deterministic decisions."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    spec: str = ""
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _probes: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _fired: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see the module docstring for the grammar)."""
        if not isinstance(spec, str) or not spec.strip():
            raise SpecError("fault spec must be a non-empty string")
        seed = 0
        rules: List[FaultRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise SpecError(
                        f"fault seed {clause!r} is not an integer"
                    ) from None
                continue
            rules.append(_parse_clause(clause, len(rules)))
        if not rules:
            raise SpecError(f"fault spec {spec!r} contains no rules")
        return cls(rules=tuple(rules), seed=seed, spec=spec.strip())

    def _draw(self, rule_index: int, point: str, probe: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{rule_index}:{point}:{probe}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, point: str) -> Optional[FaultDecision]:
        """The injection to perform at *point* now, or ``None``.

        Each matching rule consumes one probe; the first rule that fires
        wins, non-firing rules fall through to the next match.
        """
        with self._lock:
            for i, rule in enumerate(self.rules):
                if not rule.matches(point):
                    continue
                probe = self._probes.get(i, 0)
                self._probes[i] = probe + 1
                if probe < rule.after:
                    continue
                if rule.count is not None and self._fired.get(i, 0) >= rule.count:
                    continue
                if rule.rate < 1.0 and self._draw(i, point, probe) >= rule.rate:
                    continue
                self._fired[i] = self._fired.get(i, 0) + 1
                return FaultDecision(
                    point=point, mode=rule.mode, delay_s=rule.delay_s, rule=i,
                )
        return None

    def reset(self) -> None:
        """Rewind every probe/fired counter (replays the same sequence)."""
        with self._lock:
            self._probes.clear()
            self._fired.clear()

    def advance(self, probes: int) -> None:
        """Pre-advance every rule's probe counter by *probes*.

        Restarted pool workers call this with their spawn generation so
        each replacement *continues* the fault sequence instead of
        replaying it from probe 0 — otherwise a rule that fires on its
        first draw would deterministically kill every replacement worker
        and no amount of retrying could make progress.
        """
        if probes <= 0:
            return
        with self._lock:
            for i in range(len(self.rules)):
                self._probes[i] = self._probes.get(i, 0) + probes

    def describe(self) -> str:
        body = "; ".join(rule.describe() for rule in self.rules)
        return f"fault plan (seed={self.seed}): {body}"
