"""A classic three-state circuit breaker (closed → open → half-open).

The service scheduler feeds it two failure signals: compute failures
that exhausted their retries, and admission-queue saturation.  While
open, the service answers compute-path traffic with the cheap analytic
degraded response instead of queueing work it cannot finish; after
``cooldown_s`` a bounded number of half-open probe requests are let
through, and one success closes the breaker again.

State and every transition are mirrored into the metrics registry
(``breaker.state`` gauge, ``breaker.transitions`` counters), so chaos
runs and ``/metrics`` can watch the breaker move.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..obs.flight import flight
from ..telemetry.metrics import MetricsRegistry

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

_STATE_GAUGE = {STATE_CLOSED: 0.0, STATE_HALF_OPEN: 1.0, STATE_OPEN: 2.0}


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown and half-open probes."""

    def __init__(
        self,
        name: str = "service",
        failure_threshold: int = 5,
        cooldown_s: float = 2.0,
        half_open_probes: int = 1,
        registry: Optional[MetricsRegistry] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = max(1, half_open_probes)
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_left = 0
        self._gauge = self.registry.gauge("breaker.state", breaker=name)
        self._gauge.set(_STATE_GAUGE[STATE_CLOSED])

    # -- introspection --------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def describe(self) -> str:
        with self._lock:
            return (
                f"breaker {self.name}: {self._state} "
                f"({self._failures}/{self.failure_threshold} failures)"
            )

    # -- transitions ----------------------------------------------------------
    def _transition(self, state: str) -> None:
        # Caller holds the lock.
        if state == self._state:
            return
        previous = self._state
        self._state = state
        self._gauge.set(_STATE_GAUGE[state])
        self.registry.counter(
            "breaker.transitions", breaker=self.name, to=state
        ).add(1)
        recorder = flight()
        if recorder.enabled:
            recorder.record(
                "breaker", "transition",
                breaker=self.name, from_state=previous, to_state=state,
                failures=self._failures,
            )
            if state == STATE_OPEN:
                # The black-box moment: dump what led up to the trip.
                recorder.dump("breaker_open", breaker=self.name)

    def allow(self, now: float) -> bool:
        """Whether a compute-path request may proceed at time *now*.

        Closed always allows.  Open allows nothing until ``cooldown_s``
        has elapsed, then flips to half-open and hands out its probe
        budget; further requests stay shed until a probe reports back.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._transition(STATE_HALF_OPEN)
                self._probes_left = self.half_open_probes
            if self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def record_success(self, now: float = 0.0) -> None:
        """A compute-path request finished cleanly."""
        with self._lock:
            self._failures = 0
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED)

    def record_failure(self, now: float) -> None:
        """A compute-path request failed (or the queue saturated)."""
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._failures = self.failure_threshold
                self._opened_at = now
                self._transition(STATE_OPEN)
                return
            self._failures += 1
            if (
                self._state == STATE_CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._opened_at = now
                self._transition(STATE_OPEN)

    def reset(self) -> None:
        """Force-close (tests and operator tooling)."""
        with self._lock:
            self._failures = 0
            self._probes_left = 0
            self._transition(STATE_CLOSED)
