"""The chaos harness behind ``repro chaos``.

Runs a time-boxed storm of loadgen-style clients against a live service
while faults are active (server-side via ``REPRO_FAULTS`` on the serving
process, client-side via a local ``chaos.client`` plan that sabotages
requests: mid-body disconnects, slowloris dribble, malformed JSON), then
asserts the resilience invariants:

1. **No silent wrong results** — before the storm, every unique request
   in the pool is computed once on a clean serial executor (no cache,
   no pool, no injection points on that path); every ``ok``
   non-degraded response is verified byte-for-byte against that truth.
2. **Bounded error rate** — excluding deliberately sabotaged requests,
   the fraction of errored/dropped requests must stay under the budget.
   Explicit rejections (backpressure) and degraded responses are
   counted separately: they are the service *working*, not failing.
3. **Recovery SLO** — after the storm, the harness probes until a full
   pass over the pool answers ``ok`` and non-degraded, and the time to
   get there must beat the SLO.

The report also pulls ``/metrics`` from the service so every injected
fault shows up as a ``faults.injected`` counter in the artifact.

Truth and the service must agree on the machine configuration
(notably ``--functional-cap``) or fingerprints will not match and
verification is skipped — the report counts such unverifiable responses.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.flight import flight
from ..service.api import parse_request
from ..service.loadgen import _read_http_response, preset_pool
from ..sweep.executor import SweepExecutor
from .plan import FaultPlan

__all__ = [
    "ChaosReport",
    "JobKillReport",
    "NodeKillReport",
    "compute_truth",
    "run_chaos",
    "run_job_kill_chaos",
    "run_node_kill_chaos",
]


@dataclass
class ChaosReport:
    """Aggregated outcome of one chaos run, with invariant verdicts."""

    seed: int = 0
    duration_s: float = 0.0
    wall_seconds: float = 0.0
    sent: int = 0
    ok: int = 0
    degraded: int = 0
    rejected: int = 0
    errors: int = 0
    dropped: int = 0
    sabotaged: int = 0
    verified: int = 0
    unverifiable: int = 0
    wrong_results: int = 0
    malformed_accepted: int = 0
    by_source: Dict[str, int] = field(default_factory=dict)
    by_reason: Dict[str, int] = field(default_factory=dict)
    by_sabotage: Dict[str, int] = field(default_factory=dict)
    recovered: bool = False
    recovery_seconds: Optional[float] = None
    recovery_slo_s: float = 0.0
    error_budget: float = 0.0
    faults_injected: Dict[str, float] = field(default_factory=dict)
    breaker_transitions: Dict[str, float] = field(default_factory=dict)
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean_sent(self) -> int:
        return max(0, self.sent - self.sabotaged)

    @property
    def error_rate(self) -> float:
        return (self.errors + self.dropped) / max(1, self.clean_sent)

    @property
    def total_faults_injected(self) -> float:
        return sum(self.faults_injected.values())

    def finalize(self) -> "ChaosReport":
        """Evaluate the invariants; populates :attr:`violations`."""
        self.violations = []
        if self.wrong_results:
            self.violations.append(
                f"{self.wrong_results} silently wrong results (must be 0)"
            )
        if self.malformed_accepted:
            self.violations.append(
                f"{self.malformed_accepted} malformed requests answered ok"
            )
        if self.error_rate > self.error_budget:
            self.violations.append(
                f"error rate {self.error_rate:.4f} over budget "
                f"{self.error_budget:.4f} "
                f"({self.errors} errors + {self.dropped} dropped "
                f"of {self.clean_sent} clean requests)"
            )
        if not self.recovered:
            self.violations.append(
                f"service did not recover within the {self.recovery_slo_s:g}s "
                "SLO after the storm"
            )
        elif (
            self.recovery_seconds is not None
            and self.recovery_seconds > self.recovery_slo_s
        ):
            self.violations.append(
                f"recovery took {self.recovery_seconds:.2f}s, over the "
                f"{self.recovery_slo_s:g}s SLO"
            )
        return self

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "wall_seconds": self.wall_seconds,
            "sent": self.sent,
            "ok": self.ok,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "errors": self.errors,
            "dropped": self.dropped,
            "sabotaged": self.sabotaged,
            "verified": self.verified,
            "unverifiable": self.unverifiable,
            "wrong_results": self.wrong_results,
            "malformed_accepted": self.malformed_accepted,
            "error_rate": self.error_rate,
            "error_budget": self.error_budget,
            "by_source": dict(sorted(self.by_source.items())),
            "by_reason": dict(sorted(self.by_reason.items())),
            "by_sabotage": dict(sorted(self.by_sabotage.items())),
            "recovered": self.recovered,
            "recovery_seconds": self.recovery_seconds,
            "recovery_slo_s": self.recovery_slo_s,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "total_faults_injected": self.total_faults_injected,
            "breaker_transitions": dict(
                sorted(self.breaker_transitions.items())
            ),
            "mismatches": self.mismatches[:10],
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"chaos: sent {self.sent} in {self.wall_seconds:.1f} s — "
            f"{self.ok} ok, {self.degraded} degraded, "
            f"{self.rejected} rejected, {self.errors} errors, "
            f"{self.dropped} dropped, {self.sabotaged} sabotaged",
            f"verified {self.verified} responses against ground truth: "
            f"{self.wrong_results} wrong"
            + (f" ({self.unverifiable} unverifiable)"
               if self.unverifiable else ""),
            f"clean error rate {self.error_rate:.4f} "
            f"(budget {self.error_budget:.4f})",
        ]
        if self.recovered:
            lines.append(
                f"recovered in {self.recovery_seconds:.2f} s "
                f"(SLO {self.recovery_slo_s:g} s)"
            )
        else:
            lines.append(
                f"NOT recovered within the {self.recovery_slo_s:g} s SLO"
            )
        if self.faults_injected:
            lines.append(
                "faults injected: " + ", ".join(
                    f"{k}={v:g}"
                    for k, v in sorted(self.faults_injected.items())
                )
            )
        else:
            lines.append("faults injected: none reported by the service")
        if self.breaker_transitions:
            lines.append(
                "breaker transitions: " + ", ".join(
                    f"{k}={v:g}"
                    for k, v in sorted(self.breaker_transitions.items())
                )
            )
        if self.by_sabotage:
            lines.append(
                "sabotage: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.by_sabotage.items())
                )
            )
        if self.violations:
            lines.append("FAIL:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("PASS: all chaos invariants held")
        return "\n".join(lines)


def compute_truth(
    machine: Any, pool: List[Dict[str, Any]]
) -> Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]]:
    """Ground truth per pool entry: ``fingerprint -> (entry, record)``.

    Runs on a clean serial executor with no cache: the serial path has
    no injection points, so the truth is fault-free even while a plan is
    active in this process.
    """
    # task_timeout_s=0 explicitly disables any environment-supplied
    # deadline: truth must take the serial path (no injection points),
    # even when REPRO_SWEEP_TIMEOUT is exported for the server side.
    executor = SweepExecutor(machine, workers=1, cache=None, task_timeout_s=0)
    truth: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]] = {}
    for entry in pool:
        request = parse_request(dict(entry, client_id="chaos-truth"))
        kind, payload = request.payload()
        key = executor.cache_key(kind, payload)
        record = executor.run(kind, [payload], stage="chaos-truth")[0]
        # Round-trip through JSON so comparisons see exactly what a
        # served (cached) record looks like on the wire.
        truth[key] = (entry, json.loads(json.dumps(record)))
    return truth


def _strip_summary(result: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in result.items() if k != "summary"}


async def _fetch_json(host: str, port: int, path: str) -> Any:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        _status, doc = await asyncio.wait_for(
            _read_http_response(reader), 10.0
        )
        return doc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _ChaosClient:
    """One storm client: keep-alive connection + optional sabotage."""

    def __init__(
        self,
        host: str,
        port: int,
        index: int,
        seed: int,
        pool: List[Dict[str, Any]],
        truth: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]],
        plan: Optional[FaultPlan],
        report: ChaosReport,
        timeout_s: float,
    ):
        self.host = host
        self.port = port
        self.index = index
        self.rng = random.Random((seed << 8) ^ index)
        self.pool = pool
        self.truth = truth
        self.plan = plan
        self.report = report
        self.timeout_s = timeout_s
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    def _frame(self, body: bytes) -> bytes:
        return (
            f"POST /simulate HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")

    async def _connect(self) -> None:
        if self.writer is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )

    def _drop_connection(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = self.writer = None

    def _classify(self, doc: Optional[Dict[str, Any]]) -> None:
        report = self.report
        doc = doc or {}
        status = doc.get("status", "error")
        if status == "ok":
            source = doc.get("source") or "?"
            report.by_source[source] = report.by_source.get(source, 0) + 1
            if doc.get("degraded") or source == "degraded":
                report.degraded += 1
                return
            report.ok += 1
            fingerprint = doc.get("fingerprint")
            entry = self.truth.get(fingerprint)
            if entry is None:
                report.unverifiable += 1
                return
            expected = entry[1]
            got = _strip_summary(doc.get("result") or {})
            report.verified += 1
            if got != expected:
                report.wrong_results += 1
                if len(report.mismatches) < 10:
                    report.mismatches.append(
                        {
                            "fingerprint": fingerprint,
                            "source": source,
                            "expected": expected,
                            "got": got,
                        }
                    )
        elif status == "rejected":
            report.rejected += 1
            reason = doc.get("reason") or "?"
            report.by_reason[reason] = report.by_reason.get(reason, 0) + 1
        else:
            report.errors += 1
            reason = doc.get("reason") or "?"
            report.by_reason[reason] = report.by_reason.get(reason, 0) + 1

    async def run_until(self, deadline: float) -> None:
        report = self.report
        while time.perf_counter() < deadline:
            entry = self.rng.choice(self.pool)
            body = json.dumps(
                dict(entry, client_id=f"chaos-{self.index}"),
                separators=(",", ":"),
            ).encode()
            decision = (
                self.plan.decide("chaos.client")
                if self.plan is not None else None
            )
            mode = decision.mode if decision is not None else None
            report.sent += 1
            sabotage = mode in ("disconnect", "slowloris", "malformed")
            if sabotage:
                report.sabotaged += 1
                report.by_sabotage[mode] = (
                    report.by_sabotage.get(mode, 0) + 1
                )
            try:
                await self._connect()
                if mode == "disconnect":
                    # Send a torn request and hang up: the server must
                    # just close its side, never crash or stall.
                    self.writer.write(
                        self._frame(body) + body[: max(1, len(body) // 2)]
                    )
                    await self.writer.drain()
                    self._drop_connection()
                    continue
                if mode == "malformed":
                    bad = b'{"experiment": nonsense,'
                    self.writer.write(self._frame(bad) + bad)
                else:
                    if mode == "slowloris":
                        # Dribble: headers, a pause, then the body.
                        self.writer.write(self._frame(body))
                        await self.writer.drain()
                        await asyncio.sleep(
                            decision.delay_s
                            if decision.delay_s is not None else 0.25
                        )
                        self.writer.write(body)
                    else:
                        self.writer.write(self._frame(body) + body)
                await self.writer.drain()
                _status, doc = await asyncio.wait_for(
                    _read_http_response(self.reader), self.timeout_s
                )
            except (
                ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, ValueError,
            ):
                if not sabotage:
                    report.dropped += 1
                self._drop_connection()
                continue
            if mode == "malformed":
                if (doc or {}).get("status") == "ok":
                    report.malformed_accepted += 1
                continue
            self._classify(doc)
        self._drop_connection()


async def _probe_recovery(
    host: str,
    port: int,
    pool: List[Dict[str, Any]],
    slo_s: float,
    timeout_s: float,
) -> Tuple[bool, Optional[float]]:
    """Time until one full pool pass answers ok and non-degraded."""
    started = time.perf_counter()
    deadline = started + slo_s
    while True:
        all_good = True
        for entry in pool:
            body = json.dumps(
                dict(entry, client_id="chaos-recovery"), separators=(",", ":")
            ).encode()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(
                        (
                            f"POST /simulate HTTP/1.1\r\n"
                            f"Host: {host}:{port}\r\n"
                            "Content-Type: application/json\r\n"
                            "Connection: close\r\n"
                            f"Content-Length: {len(body)}\r\n\r\n"
                        ).encode("latin-1") + body
                    )
                    await writer.drain()
                    _status, doc = await asyncio.wait_for(
                        _read_http_response(reader), timeout_s
                    )
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
            except (
                ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, ValueError,
            ):
                all_good = False
                break
            doc = doc or {}
            if doc.get("status") != "ok" or doc.get("degraded"):
                all_good = False
                break
        if all_good:
            return True, time.perf_counter() - started
        if time.perf_counter() >= deadline:
            return False, None
        await asyncio.sleep(0.2)


async def _collect_metrics(
    host: str, port: int, report: ChaosReport
) -> None:
    try:
        doc = await _fetch_json(host, port, "/metrics")
    except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
        return
    for entry in (doc or {}).get("metrics", []):
        name = entry.get("name")
        labels = entry.get("labels", {}) or {}
        value = entry.get("value")
        if not isinstance(value, (int, float)):
            continue
        if name == "faults.injected":
            key = f"{labels.get('point', '?')}:{labels.get('mode', '?')}"
            report.faults_injected[key] = (
                report.faults_injected.get(key, 0) + value
            )
        elif name == "breaker.transitions":
            key = f"{labels.get('breaker', '?')}->{labels.get('to', '?')}"
            report.breaker_transitions[key] = (
                report.breaker_transitions.get(key, 0) + value
            )


@dataclass
class JobKillReport:
    """Outcome of the kill-mid-job chaos scenario (``--scenario job-kill``).

    Real runner subprocesses are SIGKILL-shaped dead (``os._exit`` via
    the ``job.point:crash`` fault, which loses the buffered store tail
    exactly like a kill) at seeded random point indices, the job is
    resumed until DONE, and the final directory is held to the same bar
    as the differential resume oracle: byte-identical to an
    uninterrupted run, zero wrong / duplicated / missing points.
    """

    seed: int = 0
    requested_kills: int = 0
    kills: int = 0
    runs: int = 0
    points_total: int = 0
    points_done: int = 0
    completed: bool = False
    byte_identical: bool = False
    wrong_points: int = 0
    duplicated_points: int = 0
    missing_points: int = 0
    wall_seconds: float = 0.0
    violations: List[str] = field(default_factory=list)

    def finalize(self) -> "JobKillReport":
        self.violations = []
        if not self.completed:
            self.violations.append(
                f"job never reached DONE ({self.points_done}/"
                f"{self.points_total} points after {self.runs} runs)"
            )
        if self.kills < 1:
            self.violations.append(
                "no runner process was actually killed - the scenario "
                "exercised nothing"
            )
        if self.wrong_points:
            self.violations.append(
                f"{self.wrong_points} wrong result points (must be 0)"
            )
        if self.duplicated_points:
            self.violations.append(
                f"{self.duplicated_points} duplicated points (must be 0)"
            )
        if self.missing_points:
            self.violations.append(
                f"{self.missing_points} missing points (must be 0)"
            )
        if self.completed and not self.byte_identical:
            self.violations.append(
                "resumed job directory is not byte-identical to the "
                "uninterrupted run"
            )
        return self

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": "job-kill",
            "seed": self.seed,
            "requested_kills": self.requested_kills,
            "kills": self.kills,
            "runs": self.runs,
            "points_total": self.points_total,
            "points_done": self.points_done,
            "completed": self.completed,
            "byte_identical": self.byte_identical,
            "wrong_points": self.wrong_points,
            "duplicated_points": self.duplicated_points,
            "missing_points": self.missing_points,
            "wall_seconds": self.wall_seconds,
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"job-kill chaos: {self.kills} kills over {self.runs} runner "
            f"processes in {self.wall_seconds:.1f} s - "
            f"{self.points_done}/{self.points_total} points, "
            f"{'DONE' if self.completed else 'NOT DONE'}",
            f"byte-identical to uninterrupted run: "
            f"{'yes' if self.byte_identical else 'NO'}; "
            f"wrong={self.wrong_points} duplicated={self.duplicated_points} "
            f"missing={self.missing_points}",
        ]
        if self.violations:
            lines.append("FAIL:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("PASS: kill-mid-job invariants held")
        return "\n".join(lines)


def _job_records(directory: Any) -> List[Dict[str, Any]]:
    """Every raw shard line of a job directory, parsed, in file order."""
    from ..jobs.store import SHARD_DIR

    out: List[Dict[str, Any]] = []
    for shard in sorted(directory.glob(f"{SHARD_DIR}/shard-*.jsonl")):
        for line in shard.read_bytes().splitlines():
            out.append(json.loads(line))
    return out


def _compare_job_dirs(truth_dir: Any, job_dir: Any) -> Dict[str, Any]:
    """The differential-oracle verdict for two completed job dirs.

    Returns wrong/duplicated/missing point counts and whether the
    manifest + every shard file match byte for byte.
    """
    from ..jobs.store import SHARD_DIR

    truth_records = _job_records(truth_dir)
    job_records = _job_records(job_dir)
    truth_by_index = {e["i"]: e for e in truth_records}
    seen: Dict[int, int] = {}
    wrong = 0
    for entry in job_records:
        seen[entry["i"]] = seen.get(entry["i"], 0) + 1
        expected = truth_by_index.get(entry["i"])
        if expected is None or expected["r"] != entry["r"]:
            wrong += 1
    names = sorted(
        p.name for p in (truth_dir / SHARD_DIR).glob("shard-*.jsonl")
    )
    byte_identical = all(
        (truth_dir / rel).read_bytes() == (job_dir / rel).read_bytes()
        for rel in ["manifest.json"]
        + [f"{SHARD_DIR}/{name}" for name in names]
    ) and names == sorted(
        p.name for p in (job_dir / SHARD_DIR).glob("shard-*.jsonl")
    )
    return {
        "wrong_points": wrong,
        "duplicated_points": sum(n - 1 for n in seen.values() if n > 1),
        "missing_points": len(set(truth_by_index) - set(seen)),
        "byte_identical": byte_identical,
    }


def run_job_kill_chaos(
    machine: Any,
    seed: int = 7,
    kills: int = 3,
    timeout_s: float = 300.0,
    spec: Any = None,
) -> JobKillReport:
    """Kill real ``repro job run`` subprocesses mid-sweep, resume, verify.

    Each killed attempt sets ``REPRO_FAULTS`` to
    ``job.point:crash:after=K`` with a seeded random ``K``, so the child
    dies by ``os._exit`` at an exact point index — the buffered store
    tail is lost, as under a real SIGKILL.  Rerunning the identical
    command resumes (the job runner is resume-native); once DONE the
    directory must match an uninterrupted in-process run byte for byte.
    """
    import os
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    from ..jobs.api import JobSpec
    from ..jobs.manager import read_state, run_job

    if spec is None:
        # Small enough for CI, but crossing several checkpoint intervals
        # and shard rotations so kills land in interesting places.
        spec = JobSpec(
            case="C1",
            teams=(64, 128, 256),
            v=(2, 4),
            threads=(32, 64),
            trials=5,
            checkpoint_interval=4,
            shard_records=5,
        )
    rng = random.Random(seed)
    report = JobKillReport(
        seed=seed,
        requested_kills=max(1, kills),
        points_total=spec.total_points(),
    )
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-job-") as tmp:
        root = Path(tmp)
        truth_dir = root / "truth"
        executor = SweepExecutor(machine, workers=1, cache=None)
        try:
            run_job(truth_dir, spec, executor)
        finally:
            executor.close()

        job_dir = root / "job"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2])
            + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        command = [
            sys.executable, "-m", "repro", "--no-cache", "job", "run",
            "--quiet", "--dir", str(job_dir),
            "--case", spec.case,
            "--teams", ",".join(map(str, spec.teams)),
            "--v", ",".join(map(str, spec.v)),
            "--threads", ",".join(map(str, spec.threads)),
            "--trials", str(spec.trials),
            "--checkpoint-interval", str(spec.checkpoint_interval),
            "--shard-records", str(spec.shard_records),
        ]
        deadline = started + timeout_s
        while report.runs < report.requested_kills + 4:
            state = read_state(job_dir) if job_dir.is_dir() else None
            if state is not None and state.get("state") == "DONE":
                break
            run_env = dict(env)
            run_env.pop("REPRO_FAULTS", None)
            done = int((state or {}).get("points_done", 0))
            remaining = spec.total_points() - done
            if report.kills < report.requested_kills and remaining > 1:
                # Crash at a seeded random index of the *remaining*
                # stream (excluding the last point, where resolving the
                # chunk can finish the job before the probe fires).
                k = rng.randrange(0, remaining - 1)
                run_env["REPRO_FAULTS"] = (
                    f"seed={seed + report.runs};job.point:crash:after={k}"
                )
            proc = subprocess.run(
                command, env=run_env, capture_output=True,
                timeout=max(1.0, deadline - time.perf_counter()),
            )
            report.runs += 1
            if proc.returncode == 3:
                report.kills += 1

        final = read_state(job_dir) if job_dir.is_dir() else None
        report.points_done = int((final or {}).get("points_done", 0))
        report.completed = bool(final and final.get("state") == "DONE")
        if report.completed:
            verdict = _compare_job_dirs(truth_dir, job_dir)
            report.wrong_points = verdict["wrong_points"]
            report.duplicated_points = verdict["duplicated_points"]
            report.missing_points = verdict["missing_points"]
            report.byte_identical = verdict["byte_identical"]
    report.wall_seconds = time.perf_counter() - started
    report.finalize()
    if report.violations:
        recorder = flight()
        if recorder.enabled:
            recorder.record(
                "chaos", "job_kill_violation",
                seed=seed, violations=list(report.violations),
            )
            recorder.dump(
                "chaos_violation", scenario="job-kill", seed=seed,
                violations=list(report.violations),
            )
    return report


@dataclass
class NodeKillReport:
    """Outcome of the node-kill cluster chaos scenario (``--scenario
    node-kill``).

    A coordinator plus N real worker-node subprocesses run a seeded
    request storm *and* a streaming job at the same time; one node is
    SIGKILLed while the job is mid-flight.  The cluster must detect the
    loss (membership DEAD), re-route around it, and still deliver: zero
    wrong results in the storm, a DONE job whose directory is
    byte-identical to an uninterrupted single-node run, and zero digest
    conflicts on re-assigned chunks.
    """

    seed: int = 0
    nodes_requested: int = 0
    nodes_joined: int = 0
    kills: int = 0
    job_state_at_kill: str = ""
    node_loss_detected: bool = False
    chunks_remote: int = 0
    chunks_local: int = 0
    chunks_reassigned: int = 0
    chunk_conflicts: int = 0
    resumes: int = 0
    points_total: int = 0
    points_done: int = 0
    completed: bool = False
    byte_identical: bool = False
    wrong_points: int = 0
    duplicated_points: int = 0
    missing_points: int = 0
    storm: Optional[Dict[str, Any]] = None
    wall_seconds: float = 0.0
    violations: List[str] = field(default_factory=list)

    def finalize(self) -> "NodeKillReport":
        self.violations = []
        if self.nodes_joined < self.nodes_requested:
            self.violations.append(
                f"only {self.nodes_joined}/{self.nodes_requested} worker "
                "nodes joined the cluster"
            )
        if self.kills < 1:
            self.violations.append(
                "no worker node was actually killed - the scenario "
                "exercised nothing"
            )
        elif self.job_state_at_kill not in ("RUNNING", "CHECKPOINTED"):
            # CHECKPOINTED is the durable between-intervals state a
            # live run passes through at every checkpoint - both mean
            # the sweep was genuinely in flight when the node died.
            self.violations.append(
                "the node was killed while the job was "
                f"{self.job_state_at_kill or 'not yet submitted'!r}, not "
                "mid-flight"
            )
        if self.kills and not self.node_loss_detected:
            self.violations.append(
                "membership never declared the killed node DEAD"
            )
        if self.chunk_conflicts:
            self.violations.append(
                f"{self.chunk_conflicts} chunk digest conflicts (a "
                "re-assigned chunk produced a different result - must "
                "be 0)"
            )
        if not self.completed:
            self.violations.append(
                f"job never reached DONE ({self.points_done}/"
                f"{self.points_total} points after {self.resumes} resumes)"
            )
        if self.wrong_points:
            self.violations.append(
                f"{self.wrong_points} wrong result points (must be 0)"
            )
        if self.duplicated_points:
            self.violations.append(
                f"{self.duplicated_points} duplicated points (must be 0)"
            )
        if self.missing_points:
            self.violations.append(
                f"{self.missing_points} missing points (must be 0)"
            )
        if self.completed and not self.byte_identical:
            self.violations.append(
                "the cluster job directory is not byte-identical to the "
                "uninterrupted single-node run"
            )
        for violation in (self.storm or {}).get("violations", []):
            self.violations.append(f"storm: {violation}")
        return self

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": "node-kill",
            "seed": self.seed,
            "nodes_requested": self.nodes_requested,
            "nodes_joined": self.nodes_joined,
            "kills": self.kills,
            "job_state_at_kill": self.job_state_at_kill,
            "node_loss_detected": self.node_loss_detected,
            "chunks_remote": self.chunks_remote,
            "chunks_local": self.chunks_local,
            "chunks_reassigned": self.chunks_reassigned,
            "chunk_conflicts": self.chunk_conflicts,
            "resumes": self.resumes,
            "points_total": self.points_total,
            "points_done": self.points_done,
            "completed": self.completed,
            "byte_identical": self.byte_identical,
            "wrong_points": self.wrong_points,
            "duplicated_points": self.duplicated_points,
            "missing_points": self.missing_points,
            "storm": self.storm,
            "wall_seconds": self.wall_seconds,
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def render(self) -> str:
        storm = self.storm or {}
        lines = [
            f"node-kill chaos: {self.nodes_joined}/{self.nodes_requested} "
            f"nodes, {self.kills} killed (job {self.job_state_at_kill or '?'} "
            f"at kill), loss detected: "
            f"{'yes' if self.node_loss_detected else 'NO'}, "
            f"{self.wall_seconds:.1f} s",
            f"job: {self.points_done}/{self.points_total} points, "
            f"{'DONE' if self.completed else 'NOT DONE'} after "
            f"{self.resumes} resumes; chunks remote={self.chunks_remote} "
            f"local={self.chunks_local} reassigned={self.chunks_reassigned} "
            f"conflicts={self.chunk_conflicts}",
            f"byte-identical to single-node run: "
            f"{'yes' if self.byte_identical else 'NO'}; "
            f"wrong={self.wrong_points} duplicated={self.duplicated_points} "
            f"missing={self.missing_points}",
            f"storm: {storm.get('sent', 0)} requests, "
            f"{storm.get('wrong_results', 0)} wrong, error rate "
            f"{storm.get('error_rate', 0.0):.4f}, recovered in "
            f"{storm.get('recovery_seconds', 0.0):.1f} s",
        ]
        if self.violations:
            lines.append("FAIL:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("PASS: node-loss invariants held")
        return "\n".join(lines)


def _counter_total(snapshot: List[Dict[str, Any]], name: str) -> int:
    return int(
        sum(
            entry.get("value", 0) or 0
            for entry in snapshot
            if entry.get("type") == "counter" and entry.get("name") == name
        )
    )


async def run_node_kill_chaos(
    machine: Any,
    seed: int = 7,
    nodes: int = 3,
    duration_s: float = 8.0,
    clients: int = 4,
    unique_points: int = 4,
    error_budget: float = 0.05,
    recovery_slo_s: float = 15.0,
    timeout_s: float = 300.0,
    preset: str = "small",
    spec: Any = None,
    functional_cap: Optional[int] = None,
) -> NodeKillReport:
    """SIGKILL a live worker node mid-storm and mid-job; verify recovery.

    The coordinator runs in-process (so the report can read membership
    and the assigner directly); the worker nodes are real ``repro node``
    subprocesses.  ``functional_cap`` must match the ``machine`` the
    caller passes, or the nodes' fingerprints will not match and every
    join is rejected.
    """
    import os
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    from ..cluster import CoordinatorHTTPServer, CoordinatorSettings
    from ..cluster.membership import ALIVE, DEAD
    from ..jobs.api import JobSpec
    from ..jobs.manager import run_job

    if spec is None:
        # One point per chunk over a 12-point grid: with 12 ring
        # lookups, the odds that *no* chunk routes to the victim node
        # (which would let the job finish without exercising the loss
        # path) are negligible.
        spec = JobSpec(
            case="C1",
            teams=(64, 128, 256),
            v=(2, 4),
            threads=(32, 64),
            trials=5,
            checkpoint_interval=1,
            shard_records=4,
        )
    report = NodeKillReport(
        seed=seed,
        nodes_requested=max(1, nodes),
        points_total=spec.total_points(),
    )
    started = time.perf_counter()
    deadline = started + timeout_s
    loop = asyncio.get_running_loop()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-node-") as tmp:
        root = Path(tmp)
        truth_dir = root / "truth"
        executor = SweepExecutor(machine, workers=1, cache=None)
        try:
            await loop.run_in_executor(
                None, run_job, truth_dir, spec, executor
            )
        finally:
            executor.close()

        settings = CoordinatorSettings(
            lease_s=1.0,
            grace_s=2.0,
            # Hedging keeps the storm clean while the victim is frozen
            # pre-kill: a forward stuck on it races the next candidate.
            hedge_delay_s=0.25,
            forward_timeout_s=10.0,
            jobs_dir=str(root / "jobs"),
            jobs_workers=1,
        )
        server = CoordinatorHTTPServer(
            machine, settings, host="127.0.0.1", port=0
        )
        await server.start()
        procs: List[Any] = []
        try:
            env = dict(os.environ)
            env.pop("REPRO_FAULTS", None)
            env["PYTHONPATH"] = (
                str(Path(__file__).resolve().parents[2])
                + os.pathsep + env.get("PYTHONPATH", "")
            ).rstrip(os.pathsep)
            command = [sys.executable, "-m", "repro", "--workers", "1",
                       "--no-cache"]
            if functional_cap is not None:
                command += ["--functional-cap", str(functional_cap)]
            command += [
                "node", "--coordinator", server.address,
                "--host", "127.0.0.1", "--port", "0", "--quiet",
            ]
            for _ in range(report.nodes_requested):
                procs.append(
                    subprocess.Popen(
                        command, env=env,
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                )
            join_deadline = time.perf_counter() + 60.0
            while time.perf_counter() < join_deadline:
                counts = server.state.membership.counts()
                report.nodes_joined = counts[ALIVE]
                if counts[ALIVE] >= report.nodes_requested:
                    break
                await asyncio.sleep(0.1)
            if report.nodes_joined < report.nodes_requested:
                report.wall_seconds = time.perf_counter() - started
                return report.finalize()

            storm_task = asyncio.ensure_future(
                run_chaos(
                    server.host, server.port, machine,
                    seed=seed,
                    duration_s=duration_s,
                    clients=clients,
                    unique_points=unique_points,
                    error_budget=error_budget,
                    recovery_slo_s=recovery_slo_s,
                    timeout_s=30.0,
                    preset=preset,
                )
            )
            # run_chaos computes its ground truth synchronously before
            # its first await, blocking the loop; this sleep resumes
            # once the storm is actually underway, so the job - and the
            # kill - genuinely overlap it.
            await asyncio.sleep(0.1)
            job_id = server.jobs.submit(spec)["id"]
            # Freeze the victim immediately (no await in between: the
            # job thread has barely started).  The first chunk the ring
            # routes to it now hangs in flight, pinning the job in
            # RUNNING until the kill - which makes "killed mid-job"
            # deterministic instead of a race against a fast sweep.
            import signal as _signal

            procs[0].send_signal(_signal.SIGSTOP)

            async def _kill_one_mid_job() -> None:
                while time.perf_counter() < deadline:
                    status = server.jobs.get(job_id)
                    state = (status or {}).get("state", "")
                    if state in ("RUNNING", "CHECKPOINTED"):
                        # Give the chunk destined for the frozen node
                        # time to be dispatched and hang.
                        await asyncio.sleep(0.5)
                        status = server.jobs.get(job_id)
                        report.job_state_at_kill = (
                            (status or {}).get("state", "")
                        )
                        procs[0].kill()
                        procs[0].wait()
                        report.kills += 1
                        return
                    if state in ("DONE", "FAILED", "CANCELLED"):
                        # Too late: the gate on job_state_at_kill fails.
                        report.job_state_at_kill = state
                        procs[0].kill()
                        procs[0].wait()
                        report.kills += 1
                        return
                    await asyncio.sleep(0.01)

            await _kill_one_mid_job()
            storm_report = await storm_task
            report.storm = storm_report.to_dict()

            # Lease + grace at these settings is ~2.5 s; the storm
            # almost always outlives detection, but don't race it.
            loss_deadline = time.perf_counter() + 4.0 * (
                settings.lease_s + settings.grace_s
            )
            while time.perf_counter() < loss_deadline:
                if server.state.membership.counts()[DEAD] >= 1:
                    report.node_loss_detected = True
                    break
                await asyncio.sleep(0.1)

            def _wait_job() -> Optional[Dict[str, Any]]:
                return server.jobs.wait(
                    job_id, max(1.0, deadline - time.perf_counter())
                )

            status = await loop.run_in_executor(None, _wait_job)
            for _ in range(3):
                if (status or {}).get("state") == "DONE":
                    break
                if time.perf_counter() >= deadline:
                    break
                report.resumes += 1
                server.jobs.resume(job_id)
                status = await loop.run_in_executor(None, _wait_job)
            report.points_done = int((status or {}).get("points_done", 0))
            report.completed = (status or {}).get("state") == "DONE"
            if report.completed:
                verdict = _compare_job_dirs(
                    truth_dir, server.jobs.directory_for(job_id)
                )
                report.wrong_points = verdict["wrong_points"]
                report.duplicated_points = verdict["duplicated_points"]
                report.missing_points = verdict["missing_points"]
                report.byte_identical = verdict["byte_identical"]

            snapshot = server.registry.snapshot()
            report.chunks_remote = _counter_total(
                snapshot, "cluster.chunks_remote"
            )
            report.chunks_local = _counter_total(
                snapshot, "cluster.chunks_local"
            )
            report.chunks_reassigned = _counter_total(
                snapshot, "cluster.chunks_reassigned"
            )
            report.chunk_conflicts = _counter_total(
                snapshot, "cluster.chunk_conflicts"
            )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            await server.stop()
    report.wall_seconds = time.perf_counter() - started
    report.finalize()
    if report.violations:
        recorder = flight()
        if recorder.enabled:
            recorder.record(
                "chaos", "node_kill_violation",
                seed=seed, violations=list(report.violations),
            )
            recorder.dump(
                "chaos_violation", scenario="node-kill", seed=seed,
                violations=list(report.violations),
            )
    return report


async def run_chaos(
    host: str,
    port: int,
    machine: Any,
    seed: int = 7,
    duration_s: float = 20.0,
    clients: int = 8,
    unique_points: int = 6,
    client_faults: Optional[str] = None,
    error_budget: float = 0.01,
    recovery_slo_s: float = 10.0,
    timeout_s: float = 30.0,
    preset: str = "small",
) -> ChaosReport:
    """Storm ``host:port`` for ``duration_s`` and assert the invariants."""
    pool = preset_pool(preset, unique_points)
    truth = compute_truth(machine, pool)
    plan = (
        FaultPlan.parse(
            client_faults
            if "seed=" in client_faults
            else f"seed={seed};{client_faults}"
        )
        if client_faults else None
    )
    report = ChaosReport(
        seed=seed,
        duration_s=duration_s,
        error_budget=error_budget,
        recovery_slo_s=recovery_slo_s,
    )
    started = time.perf_counter()
    deadline = started + duration_s
    workers = [
        _ChaosClient(
            host, port, i, seed, pool, truth, plan, report, timeout_s
        )
        for i in range(max(1, clients))
    ]
    await asyncio.gather(*(w.run_until(deadline) for w in workers))
    report.wall_seconds = time.perf_counter() - started
    report.recovered, report.recovery_seconds = await _probe_recovery(
        host, port, pool, recovery_slo_s, timeout_s
    )
    await _collect_metrics(host, port, report)
    report.finalize()
    if report.violations:
        recorder = flight()
        if recorder.enabled:
            recorder.record(
                "chaos", "invariant_violation",
                seed=seed, violations=list(report.violations),
            )
            recorder.dump(
                "chaos_violation",
                seed=seed,
                violations=list(report.violations),
                error_rate=report.error_rate,
                wrong_results=report.wrong_results,
            )
    return report
