"""The process-global fault injector behind every injection point.

Hot paths call :func:`fire` with their point name; with no plan active
that is a single global read returning ``None`` (the zero-overhead
contract the disabled-overhead test enforces).  With a plan active, a
firing probe increments the ``faults.injected`` telemetry counter
(labelled by point and mode — the global metrics registry is live even
when span recording is off, so every injected fault is countable from
``/metrics``), records a ``fault.inject`` span when telemetry is on, and
returns the :class:`~repro.faults.plan.FaultDecision` for the call site
to act on.

Activation mirrors telemetry: the ``REPRO_FAULTS`` environment variable
(inherited by forked shards and spawned pool workers), or
:attr:`repro.config.ReproConfig.faults` on the machine a driver builds,
or :func:`activate` directly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from ..obs.flight import flight
from ..telemetry.state import get_telemetry, metrics
from .plan import FaultDecision, FaultPlan

__all__ = [
    "FAULTS_ENV",
    "activate",
    "active_plan",
    "deactivate",
    "enabled",
    "fire",
    "injected",
]

#: Environment variable carrying the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

_PLAN: Optional[FaultPlan] = None

_env_spec = os.environ.get(FAULTS_ENV)
if _env_spec and _env_spec.strip():
    # Fail loudly on a malformed spec: silently ignoring a typo'd
    # REPRO_FAULTS would make a chaos run report a spotless pass.
    _PLAN = FaultPlan.parse(_env_spec)
del _env_spec


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, or ``None``."""
    return _PLAN


def enabled() -> bool:
    """Whether any fault plan is active in this process."""
    return _PLAN is not None


def activate(
    spec_or_plan: Union[str, FaultPlan], set_env: bool = True
) -> FaultPlan:
    """Install a fault plan process-wide; returns it.

    Re-activating the identical spec is a no-op (probe counters keep
    running), so repeated ``Machine(config)`` constructions do not
    rewind a live chaos sequence.  ``set_env`` exports the spec so
    forked/spawned worker processes inherit the same plan.
    """
    global _PLAN
    if isinstance(spec_or_plan, FaultPlan):
        plan = spec_or_plan
    else:
        if _PLAN is not None and _PLAN.spec == spec_or_plan.strip():
            return _PLAN
        plan = FaultPlan.parse(spec_or_plan)
    _PLAN = plan
    if set_env and plan.spec:
        os.environ[FAULTS_ENV] = plan.spec
    return plan


def deactivate(set_env: bool = True) -> None:
    """Remove the active plan (injection points return to no-ops)."""
    global _PLAN
    _PLAN = None
    if set_env:
        os.environ.pop(FAULTS_ENV, None)


@contextmanager
def injected(spec_or_plan: Union[str, FaultPlan]) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block (used by tests and the harness)."""
    previous = _PLAN
    plan = activate(spec_or_plan)
    try:
        yield plan
    finally:
        deactivate()
        if previous is not None:
            activate(previous)


def fire(point: str) -> Optional[FaultDecision]:
    """Probe *point* against the active plan; ``None`` when nothing fires."""
    plan = _PLAN
    if plan is None:
        return None
    decision = plan.decide(point)
    if decision is None:
        return None
    metrics().counter(
        "faults.injected", point=point, mode=decision.mode
    ).add(1)
    recorder = flight()
    if recorder.enabled:
        recorder.record(
            "fault", "inject", point=point, mode=decision.mode
        )
    telemetry = get_telemetry()
    if telemetry.enabled:
        with telemetry.recorder.span(
            "fault.inject", category="faults",
            point=point, mode=decision.mode,
        ):
            pass
    return decision
