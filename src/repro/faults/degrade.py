"""Graceful degradation: the cheap closed-form analytic fallback.

When the circuit breaker is open or the admission queue is saturated,
the service answers compute-path requests with a roofline estimate
instead of a 5xx: a memory-bound sum reduction's runtime floor is
``input_bytes / peak_bandwidth``, which every layer of the performance
model already assumes (paper §IV).  The response carries
``degraded: true`` and ``source: "degraded"`` so clients — and the
paper-figure pipeline, which must exclude these — can tell the estimate
from a measurement.  No functional sum is run, so ``value`` is null.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["analytic_estimate"]


def analytic_estimate(machine: Any, request: Any) -> Dict[str, Any]:
    """A roofline-shaped result record for *request* (no simulation run).

    Shaped like the executor's real records (so ``summarize_record``
    applies unchanged) plus ``analytic``/``model`` markers.
    """
    peak_gbs = machine.system.peak_gpu_bandwidth_gbs
    seconds = request.case.input_bytes / (peak_gbs * 1e9)
    if request.experiment == "gpu":
        return {
            "bandwidth_gbs": peak_gbs,
            "elapsed_seconds": seconds,
            "value": None,
            "analytic": True,
            "model": "roofline",
        }
    return {"measurements": [], "analytic": True, "model": "roofline"}
