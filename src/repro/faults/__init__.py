"""Deterministic fault injection and the resilience layer built on it.

``plan``/``injector`` are the injection side: a seeded, rule-based
:class:`FaultPlan` activated via ``REPRO_FAULTS`` (or
``ReproConfig.faults``) that fires at named points in the hot paths and
is a no-op when unset.  ``breaker`` and ``supervisor`` are the
resilience side: the circuit breaker used by the service scheduler and
the supervised worker pool used by the sweep executor.

``degrade`` (analytic fallback) and ``chaos`` (the ``repro chaos``
harness) are deliberately *not* re-exported here: they sit above the
service layer and importing them from the package root would create an
import cycle through ``repro.service``.
"""

from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from .injector import (
    FAULTS_ENV,
    activate,
    active_plan,
    deactivate,
    enabled,
    fire,
    injected,
)
from .plan import FaultDecision, FaultPlan, FaultRule, SpecError
from .supervisor import SupervisedWorkerPool, failure_record, record_checksum

__all__ = [
    "CircuitBreaker",
    "FAULTS_ENV",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "SpecError",
    "SupervisedWorkerPool",
    "activate",
    "active_plan",
    "deactivate",
    "enabled",
    "failure_record",
    "fire",
    "injected",
    "record_checksum",
]
