"""Minimal logging shim.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace; nothing is configured by default (library etiquette),
but :func:`enable_debug_logging` gives examples and the benchmark harness a
one-liner to surface model decisions (grid heuristics, page migrations) —
either as plain text or as structured JSON lines for log pipelines.
"""

from __future__ import annotations

import json
import logging

__all__ = ["get_logger", "enable_debug_logging", "JsonLinesFormatter"]

_ROOT_NAME = "repro"

#: LogRecord fields that are plumbing, not caller-supplied context.
_RESERVED = frozenset(
    logging.makeLogRecord({}).__dict__
) | {"message", "asctime"}


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the library namespace."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: timestamp, logger, level, message, extras.

    Fields passed via ``logger.debug(..., extra={...})`` are included
    verbatim (non-serializable values fall back to ``repr``).
    """

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "timestamp": self.formatTime(record, "%Y-%m-%dT%H:%M:%S%z"),
            "logger": record.name,
            "level": record.levelname,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                doc[key] = value
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=repr, sort_keys=True)


def enable_debug_logging(
    level: int = logging.DEBUG, json_lines: bool = False
) -> logging.Logger:
    """Attach a stderr handler to the library root logger.

    Returns the root library logger so callers can tweak it further.  Safe
    to call repeatedly; only one handler is installed, and ``propagate``
    is switched off so applications with a configured root handler don't
    see every line twice.  ``json_lines=True`` emits structured records
    (one JSON object per line) instead of plain text.
    """
    logger = get_logger()
    handler = next(
        (h for h in logger.handlers if isinstance(h, logging.StreamHandler)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        logger.addHandler(handler)
    handler.setFormatter(
        JsonLinesFormatter()
        if json_lines
        else logging.Formatter("%(name)s %(levelname)s: %(message)s")
    )
    logger.propagate = False
    logger.setLevel(level)
    return logger
