"""Minimal logging shim.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace; nothing is configured by default (library etiquette),
but :func:`enable_debug_logging` gives examples and the benchmark harness a
one-liner to surface model decisions (grid heuristics, page migrations).
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_debug_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the library namespace."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


def enable_debug_logging(level: int = logging.DEBUG) -> logging.Logger:
    """Attach a stderr handler to the library root logger.

    Returns the root library logger so callers can tweak it further.  Safe
    to call repeatedly; only one handler is installed.
    """
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger
