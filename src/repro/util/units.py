"""Byte / bandwidth / time unit helpers.

The paper reports bandwidth as ``1e-9 * bytes / seconds`` (decimal GB/s,
Listing 6), while memory capacities use binary units.  Keeping both families
of constants here avoids scattering ``1e9`` vs ``2**30`` conversions through
the models.
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "bytes_to_gb",
    "gb_per_s",
    "format_bytes",
    "format_bandwidth",
    "format_time",
]

# Binary (capacity) units.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

# Decimal (bandwidth) units — the paper's GB/s metric is decimal.
KB = 10**3
MB = 10**6
GB = 10**9


def bytes_to_gb(nbytes: float) -> float:
    """Convert a byte count to decimal gigabytes (the paper's unit)."""
    return nbytes / GB


def gb_per_s(nbytes: float, seconds: float) -> float:
    """Bandwidth in decimal GB/s, exactly as Listing 6 computes it.

    ``bandwidth = 1e-9 * M * sizeof(T) * N / elapsed_time``
    """
    if seconds <= 0.0:
        raise ValueError(f"elapsed time must be positive, got {seconds!r}")
    return nbytes / GB / seconds


def format_bytes(nbytes: float) -> str:
    """Human-readable binary byte count, e.g. ``"4.00 GiB"``."""
    value = float(nbytes)
    for unit, size in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(value) >= size:
            return f"{value / size:.2f} {unit}"
    return f"{value:.0f} B"


def format_bandwidth(gbs: float) -> str:
    """Render a bandwidth value the way the paper's tables do."""
    return f"{gbs:.0f} GB/s" if gbs >= 100 else f"{gbs:.1f} GB/s"


def format_time(seconds: float) -> str:
    """Human-readable duration with an auto-selected unit."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"
