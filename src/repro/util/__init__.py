"""General-purpose helpers: units, statistics, tables, validation."""

from .units import (
    KiB,
    MiB,
    GiB,
    GB,
    bytes_to_gb,
    gb_per_s,
    format_bytes,
    format_bandwidth,
    format_time,
)
from .stats import geomean, mean, summarize, Summary
from .tables import AsciiTable
from .validation import (
    check_positive_int,
    check_power_of_two,
    check_fraction,
    is_power_of_two,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "GB",
    "bytes_to_gb",
    "gb_per_s",
    "format_bytes",
    "format_bandwidth",
    "format_time",
    "geomean",
    "mean",
    "summarize",
    "Summary",
    "AsciiTable",
    "check_positive_int",
    "check_power_of_two",
    "check_fraction",
    "is_power_of_two",
]
