"""Small statistics helpers used by the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["geomean", "mean", "summarize", "Summary"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty input."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class Summary:
    """Five-number summary of a sample."""

    n: int
    minimum: float
    maximum: float
    mean: float
    stdev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} min={self.minimum:.4g} max={self.maximum:.4g} "
            f"mean={self.mean:.4g} stdev={self.stdev:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of *values*."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("summarize of empty sequence")
    mu = mean(vals)
    var = sum((v - mu) ** 2 for v in vals) / len(vals)
    return Summary(
        n=len(vals),
        minimum=min(vals),
        maximum=max(vals),
        mean=mu,
        stdev=math.sqrt(var),
    )
