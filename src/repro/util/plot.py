"""Text plotting: render figure series as terminal charts.

The reproduction runs in environments without a display; these helpers
draw the paper's curves as monospace charts so `examples/reproduce_paper.py`
output is visually checkable against the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "bar_chart"]

_GLYPHS = "o+x*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 68,
    height: int = 16,
    ylabel: str = "",
) -> str:
    """Plot one or more (x, y) series on a shared text canvas.

    X positions are taken by rank (the paper's axes are categorical powers
    of two / p steps); Y is linear from 0 to the maximum.  Each series
    gets a glyph, collisions show the later series' glyph.
    """
    if not series:
        raise ValueError("ascii_chart requires at least one series")
    n_points = max(len(s) for s in series.values())
    if n_points == 0:
        raise ValueError("ascii_chart requires non-empty series")
    y_max = max(y for s in series.values() for _, y in s)
    if y_max <= 0:
        y_max = 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, points) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for rank, (_, y) in enumerate(points):
            col = 0 if n_points == 1 else round(rank * (width - 1) / (n_points - 1))
            row = height - 1 - round((y / y_max) * (height - 1))
            canvas[row][col] = glyph

    axis_width = 9
    lines: List[str] = []
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_max:8.4g} "
        elif i == height - 1:
            label = f"{0:8.4g} "
        else:
            label = " " * axis_width
        lines.append(label + "|" + "".join(row))
    lines.append(" " * axis_width + "+" + "-" * width)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    footer = " " * axis_width + " " + legend
    if ylabel:
        footer += f"   (y: {ylabel})"
    lines.append(footer)
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        raise ValueError("bar_chart requires at least one value")
    v_max = max(values.values())
    if v_max <= 0:
        v_max = 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        bar = "#" * max(0, round(width * value / v_max))
        lines.append(
            f"{name.ljust(label_width)} | {bar} {value:.4g}{unit}"
        )
    return "\n".join(lines)
