"""Argument-validation helpers shared by the public API surfaces."""

from __future__ import annotations

__all__ = [
    "is_power_of_two",
    "check_positive_int",
    "check_power_of_two",
    "check_fraction",
]


def is_power_of_two(value: int) -> bool:
    """``True`` when *value* is a positive integral power of two."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def check_positive_int(value, name: str) -> int:
    """Validate *value* as a strictly positive integer and return it.

    Accepts NumPy integer scalars as well as Python ints; bools are
    rejected (they are ``int`` subclasses but never a meaningful count).
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}") from exc
    if ivalue != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if ivalue <= 0:
        raise ValueError(f"{name} must be positive, got {ivalue}")
    return ivalue


def check_power_of_two(value, name: str) -> int:
    """Validate *value* as a positive power-of-two integer and return it.

    The paper's parameter space restricts teams and V to powers of two
    (§III.C); the sweep drivers enforce that here.
    """
    ivalue = check_positive_int(value, name)
    if not is_power_of_two(ivalue):
        raise ValueError(f"{name} must be a power of two, got {ivalue}")
    return ivalue


def check_fraction(value, name: str) -> float:
    """Validate *value* as a float in [0, 1] and return it."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {fvalue}")
    return fvalue
