"""Plain-text table rendering for the benchmark harness.

The reproduction prints the same rows the paper's tables and figure series
report; this renderer keeps that output aligned and diff-friendly without
pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["AsciiTable"]


class AsciiTable:
    """Accumulate rows and render them as an aligned monospace table.

    >>> t = AsciiTable(["Case", "GB/s"])
    >>> t.add_row(["C1", 3795.0])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Case | GB/s
    -----+-----
    C1   | 3795
    """

    def __init__(self, headers: Sequence[str], float_format: str = "{:.4g}"):
        self.headers: List[str] = [str(h) for h in headers]
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are stringified (floats via *float_format*)."""
        row = [self._fmt(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(row)

    def _fmt(self, cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the full table as a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells: Sequence[str], pad: str = " ", sep: str = "|") -> str:
            parts = [c.ljust(w) for c, w in zip(cells, widths)]
            return (pad + sep + pad).join(parts).rstrip()

        out = [line(self.headers)]
        out.append(line(["-" * w for w in widths], pad="-", sep="+"))
        out.extend(line(row) for row in self._rows)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
