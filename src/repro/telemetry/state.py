"""Process-global telemetry state and the fast no-op path.

Telemetry is **off by default** and must cost close to nothing while off:
every instrumentation site goes through :func:`span` / :func:`traced` /
:func:`enabled`, whose disabled path is a single attribute check.  Turn
it on with

* ``REPRO_TELEMETRY=1`` in the environment (inherited by sweep worker
  processes, which is how worker-side spans get recorded), or
* :func:`configure` (what ``repro --trace-out`` and ``repro profile``
  do), or
* :attr:`repro.config.ReproConfig.telemetry` on the machine a driver
  builds.
"""

from __future__ import annotations

import functools
import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .metrics import MetricsRegistry
from .spans import NOOP_SPAN, SpanRecorder

__all__ = [
    "TELEMETRY_ENV",
    "Telemetry",
    "configure",
    "enabled",
    "get_telemetry",
    "metrics",
    "span",
    "traced",
]

#: Environment variable enabling telemetry ("1"/"true"/"yes"/"on").
TELEMETRY_ENV = "REPRO_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _env_enabled() -> bool:
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in _TRUTHY


class Telemetry:
    """A span recorder plus a metrics registry behind one enable switch."""

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = _env_enabled() if enabled is None else enabled
        self.recorder = SpanRecorder()
        self.registry = MetricsRegistry()

    def reset(self) -> None:
        """Drop all recorded spans and metrics (the enable flag stays)."""
        self.recorder.clear()
        self.registry.clear()


_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry instance."""
    return _TELEMETRY


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _TELEMETRY.enabled


def configure(enabled: Optional[bool] = None, reset: bool = False) -> Telemetry:
    """Flip the global enable switch and/or clear recorded data."""
    if reset:
        _TELEMETRY.reset()
    if enabled is not None:
        _TELEMETRY.enabled = enabled
        if enabled:
            # Worker processes (including spawn-start pools) resolve their
            # own state from the environment.
            os.environ[TELEMETRY_ENV] = "1"
        else:
            os.environ.pop(TELEMETRY_ENV, None)
    return _TELEMETRY


class _NoopContext:
    """Reusable context manager yielding the shared no-op span."""

    __slots__ = ()

    def __enter__(self):
        return NOOP_SPAN

    def __exit__(self, *exc_info):
        return False


_NOOP_CONTEXT = _NoopContext()


def span(name: str, category: str = "repro", **attributes: Any):
    """Context manager recording a span — or a shared no-op when disabled."""
    if not _TELEMETRY.enabled:
        return _NOOP_CONTEXT
    return _TELEMETRY.recorder.span(name, category=category, **attributes)


def traced(name: Optional[str] = None, category: str = "repro"):
    """Decorator recording a span per call; near-free when disabled."""

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _TELEMETRY.enabled:
                return func(*args, **kwargs)
            with _TELEMETRY.recorder.span(span_name, category=category):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def metrics() -> MetricsRegistry:
    """The global metrics registry (live even when spans are disabled)."""
    return _TELEMETRY.registry
