"""Exporters: Chrome-trace JSON, plain JSON snapshots, ASCII views.

Three ways out of the telemetry layer:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the ``trace_event``
  format (load the file in ``chrome://tracing`` or ``ui.perfetto.dev``).
  Wall-clock spans render one process row per OS process (worker spans
  re-parent under the coordinator), and the simulated device activity
  from :meth:`repro.sim.trace.Trace.to_events` renders as its own
  process with one lane per modeled resource (GPU SM groups, C2C link,
  CPU) on the *sim* clock — the modeled GH200 timeline, the
  reproduction's stand-in for the paper's Nsight screenshots.
* :func:`snapshot` — everything (spans, metrics, sim trace) as one plain
  JSON document, consumed by ``repro profile view``.
* :func:`render_summary` / :func:`render_flame` — ASCII aggregate table
  and call-tree view for terminals.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..util.tables import AsciiTable
from ..util.units import format_bytes, format_time
from .metrics import MetricsRegistry
from .spans import Span
from .state import Telemetry, get_telemetry

__all__ = [
    "SIM_PID",
    "chrome_trace",
    "write_chrome_trace",
    "snapshot",
    "write_snapshot",
    "render_summary",
    "render_flame",
]

#: The pid under which simulated-clock lanes render (real pids are >= 1).
SIM_PID = 0


def _wall_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Complete ("X") events for wall-clock spans, ts in microseconds.

    Spans carrying cross-process trace-context attributes additionally
    emit Chrome *flow* events: ``flow_out`` (a flow id string, set by a
    producing span such as ``service.request`` at enqueue) becomes a
    flow-start (``ph: "s"``), and ``flow_in`` (a list of flow ids on a
    consuming span such as ``service.batch``) becomes flow-finishes
    (``ph: "f"``, binding-point ``e``) — so Perfetto draws arrows from
    each request to the batch that served it, across processes.
    """
    if not spans:
        return []
    t0 = min(sp.start for sp in spans)
    events: List[Dict[str, Any]] = []
    for sp in spans:
        args = dict(sp.attributes)
        args["span_id"] = sp.span_id
        if sp.parent_id is not None:
            args["parent_id"] = sp.parent_id
        start_us = (sp.start - t0) * 1e6
        events.append(
            {
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "ts": start_us,
                "dur": sp.duration * 1e6,
                "pid": sp.pid,
                "tid": sp.tid,
                "args": args,
            }
        )
        flow_out = sp.attributes.get("flow_out")
        if isinstance(flow_out, str):
            events.append(
                {
                    "name": "trace",
                    "cat": "obs.flow",
                    "ph": "s",
                    "id": flow_out,
                    "ts": start_us,
                    "pid": sp.pid,
                    "tid": sp.tid,
                }
            )
        flow_in = sp.attributes.get("flow_in")
        if isinstance(flow_in, (list, tuple)):
            for fid in flow_in:
                if not isinstance(fid, str):
                    continue
                events.append(
                    {
                        "name": "trace",
                        "cat": "obs.flow",
                        "ph": "f",
                        "bp": "e",
                        "id": fid,
                        "ts": start_us,
                        "pid": sp.pid,
                        "tid": sp.tid,
                    }
                )
    return events


def _metadata_events(spans: Sequence[Span], coordinator_pid: Optional[int]) -> List[Dict[str, Any]]:
    """Process/thread name metadata ("M") events for every lane."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": SIM_PID,
            "tid": 0,
            "args": {"name": "simulated GH200 (sim clock)"},
        }
    ]
    seen = set()
    for sp in spans:
        if sp.pid in seen:
            continue
        seen.add(sp.pid)
        role = "repro" if sp.pid == coordinator_pid else "sweep worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": sp.pid,
                "tid": 0,
                "args": {"name": f"{role} (wall clock, pid {sp.pid})"},
            }
        )
    return events


def chrome_trace(
    spans: Optional[Sequence[Span]] = None,
    trace: Any = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Build the full Chrome-trace document (a JSON-serializable dict)."""
    spans = list(spans if spans is not None else get_telemetry().recorder.snapshot())
    coordinator_pid = min((sp.pid for sp in spans), default=None)
    events = _metadata_events(spans, coordinator_pid)
    if trace is not None:
        events.extend(trace.to_events())
    events.extend(_wall_events(spans))
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.telemetry"},
    }
    if registry is not None:
        doc["otherData"]["metrics"] = registry.snapshot()
    return doc


def write_chrome_trace(
    path: "str | Path",
    spans: Optional[Sequence[Span]] = None,
    trace: Any = None,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write :func:`chrome_trace` to *path*; returns the path."""
    path = Path(path)
    doc = chrome_trace(spans, trace=trace, registry=registry)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True), encoding="utf-8")
    return path


def snapshot(
    telemetry: Optional[Telemetry] = None, trace: Any = None
) -> Dict[str, Any]:
    """Plain-JSON dump: spans + metrics (+ sim trace summary/events)."""
    telemetry = telemetry or get_telemetry()
    doc: Dict[str, Any] = {
        "format": "repro-telemetry-snapshot",
        "version": 1,
        "spans": [sp.to_dict() for sp in telemetry.recorder.snapshot()],
        "metrics": telemetry.registry.snapshot(),
    }
    if trace is not None:
        doc["trace_summary"] = trace.summary()
        doc["trace_events"] = trace.to_events()
    return doc


def write_snapshot(
    path: "str | Path",
    telemetry: Optional[Telemetry] = None,
    trace: Any = None,
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(snapshot(telemetry, trace), indent=1, sort_keys=True),
        encoding="utf-8",
    )
    return path


# -- ASCII views --------------------------------------------------------------


def _children_index(spans: Sequence[Span]) -> Dict[Optional[str], List[Span]]:
    by_parent: Dict[Optional[str], List[Span]] = defaultdict(list)
    ids = {sp.span_id for sp in spans}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in ids else None
        by_parent[parent].append(sp)
    for children in by_parent.values():
        children.sort(key=lambda sp: sp.start)
    return by_parent


def render_summary(
    spans: Optional[Sequence[Span]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Aggregate table: per span name, calls / total / self / mean time."""
    telemetry = get_telemetry()
    spans = list(spans if spans is not None else telemetry.recorder.snapshot())
    registry = registry if registry is not None else telemetry.registry

    child_time: Dict[str, float] = defaultdict(float)
    for sp in spans:
        if sp.parent_id is not None:
            child_time[sp.parent_id] += sp.duration

    agg: Dict[tuple, List[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    for sp in spans:
        row = agg[(sp.category, sp.name)]
        row[0] += 1
        row[1] += sp.duration
        row[2] += max(0.0, sp.duration - child_time.get(sp.span_id, 0.0))

    lines: List[str] = [f"telemetry summary: {len(spans)} spans"]
    table = AsciiTable(["category", "span", "calls", "total", "self", "mean"])
    for (category, name), (calls, total, self_time) in sorted(
        agg.items(), key=lambda kv: -kv[1][2]
    ):
        table.add_row(
            [
                category,
                name,
                int(calls),
                format_time(total),
                format_time(self_time),
                format_time(total / calls),
            ]
        )
    if agg:
        lines.append(table.render())

    metric_rows = registry.snapshot()
    if metric_rows:
        mtable = AsciiTable(["metric", "labels", "value"])
        for entry in metric_rows:
            labels = ",".join(f"{k}={v}" for k, v in entry["labels"].items())
            if entry["type"] == "histogram":
                value = (
                    f"count={entry['count']} sum={entry['sum']:.6g} "
                    f"mean={(entry['sum'] / entry['count']) if entry['count'] else 0:.6g}"
                )
            elif "bytes" in entry["name"] and entry["value"] is not None:
                value = f"{entry['value']} ({format_bytes(entry['value'])})"
            else:
                value = entry["value"]
            mtable.add_row([entry["name"], labels or "-", value])
        lines.append("")
        lines.append(mtable.render())
    return "\n".join(lines)


def render_flame(
    spans: Optional[Sequence[Span]] = None, max_depth: int = 12
) -> str:
    """Indented call-tree ("ASCII flame") view of the span hierarchy."""
    spans = list(
        spans if spans is not None else get_telemetry().recorder.snapshot()
    )
    if not spans:
        return "(no spans recorded)"
    by_parent = _children_index(spans)
    lines: List[str] = []

    def walk(sp: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{sp.category}.{sp.name}  {format_time(sp.duration)}"
        )
        if depth + 1 >= max_depth:
            return
        children = by_parent.get(sp.span_id, [])
        # Collapse repetitive fan-out (e.g. 60 sweep points) to keep the
        # view readable: identical child names group into one line.
        groups: Dict[tuple, List[Span]] = defaultdict(list)
        for child in children:
            groups[(child.category, child.name)].append(child)
        for (category, name), group in groups.items():
            if len(group) > 3:
                total = sum(c.duration for c in group)
                lines.append(
                    f"{indent}  {category}.{name} x{len(group)}  "
                    f"{format_time(total)} total"
                )
                deepest = max(group, key=lambda c: c.duration)
                for grandchild in by_parent.get(deepest.span_id, []):
                    walk(grandchild, depth + 2)
            else:
                for child in group:
                    walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
