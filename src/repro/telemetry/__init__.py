"""Unified observability: spans, metrics, and timeline export.

The paper's evidence is profiler output — §III.C checks kernel grid sizes
against ``num_teams`` and attributes slowdowns to page-migration traffic
straight from an Nsight-style timeline.  This package makes the
reproduction's equivalents first-class:

* **Spans** (:mod:`~repro.telemetry.spans`) — hierarchical wall-clock
  regions over the whole pipeline: ``NvhpcCompiler.compile``, launch
  geometry resolution, the event engine, functional GPU/CPU execution,
  and every sweep stage and point (worker-side spans ship back with the
  results and re-parent under the coordinator).
* **Metrics** (:mod:`~repro.telemetry.metrics`) — counters, gauges and
  fixed-bucket histograms: bytes migrated by reason, launches by kernel,
  cache hit ratios, sweep points per stage.
* **Exporters** (:mod:`~repro.telemetry.exporters`) — Chrome-trace /
  Perfetto JSON (wall-clock rows plus simulated device lanes on the sim
  clock), plain JSON snapshots, and ASCII summary / flame views.

Everything is off by default and near-free while off — see
:mod:`~repro.telemetry.state` for the enable switches
(``REPRO_TELEMETRY=1``, :func:`configure`,
:attr:`repro.config.ReproConfig.telemetry`), and docs/OBSERVABILITY.md
for the span taxonomy and metric names.
"""

from .exporters import (
    SIM_PID,
    chrome_trace,
    render_flame,
    render_summary,
    snapshot,
    write_chrome_trace,
    write_snapshot,
)
from .metrics import (
    BYTES_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, SpanRecorder
from .state import (
    TELEMETRY_ENV,
    Telemetry,
    configure,
    enabled,
    get_telemetry,
    metrics,
    span,
    traced,
)

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIM_PID",
    "Span",
    "SpanRecorder",
    "TELEMETRY_ENV",
    "Telemetry",
    "chrome_trace",
    "configure",
    "enabled",
    "get_telemetry",
    "metrics",
    "render_flame",
    "render_summary",
    "snapshot",
    "span",
    "traced",
    "write_chrome_trace",
    "write_snapshot",
]
