"""Hierarchical wall-clock spans.

A :class:`Span` is one timed region of the pipeline — a compilation, a
launch-geometry resolution, a sweep stage, one sweep point.  Spans nest:
each thread keeps a stack, so a span opened while another is active
records that span as its parent, and the exported tree reconstructs the
full call hierarchy (the reproduction's answer to an Nsight timeline's
row nesting).

Identifiers are process- and thread-safe: ``<pid>-<tid>-<seq>``, so spans
recorded inside sweep worker processes can ship back with their results
(:meth:`SpanRecorder.export_since` / :meth:`SpanRecorder.ingest`) and
re-parent under the coordinator's stage span without ID collisions.

Timestamps are ``time.time()`` epoch seconds (comparable across
processes); durations come from ``time.perf_counter()`` deltas.  Spans
for *simulated* activities live in the other clock domain — see
:meth:`repro.sim.trace.Trace.to_events`.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanRecorder"]

# One epoch anchor per process: span starts are epoch + perf_counter so
# starts and durations share the same monotonic timebase (children nest
# exactly inside their parents), while remaining comparable — up to clock
# skew — across coordinator and worker processes.
_EPOCH = time.time() - time.perf_counter()


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    category: str
    span_id: str
    parent_id: Optional[str]
    start: float  # epoch seconds
    duration: float = 0.0
    pid: int = 0
    tid: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            category=data["category"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data["start"],
            duration=data.get("duration", 0.0),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            attributes=dict(data.get("attributes", {})),
        )


class _NoopSpan:
    """Shared stand-in yielded when telemetry is disabled."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class SpanRecorder:
    """Per-process span store: a thread-local stack plus a finished list."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._local = threading.local()
        self.finished: List[Span] = []

    # -- stack ----------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_id(self) -> Optional[str]:
        span = self.current()
        return span.span_id if span else None

    def _new_id(self) -> str:
        return f"{os.getpid():x}-{threading.get_ident():x}-{next(self._seq):x}"

    def new_id(self) -> str:
        """Allocate a fresh span id (for externally managed spans)."""
        return self._new_id()

    def record(self, span: Span) -> None:
        """Append an externally finished span to the finished list.

        Used by :mod:`repro.obs.trace` for request/batch spans whose
        lifetime crosses ``await`` points: the thread-local stack would
        interleave wrongly under asyncio, so those spans are opened and
        closed explicitly and never touch the stack.
        """
        with self._lock:
            self.finished.append(span)

    # -- recording ------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        category: str = "repro",
        *,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        """Open a child of the current span for the duration of the block.

        ``parent_id`` overrides the stack parent — used when the logical
        parent lives on another thread (e.g. a dispatch span parented
        under an asyncio-side batch span).
        """
        stack = self._stack()
        t0 = time.perf_counter()
        sp = Span(
            name=name,
            category=category,
            span_id=self._new_id(),
            parent_id=parent_id
            if parent_id is not None
            else (stack[-1].span_id if stack else None),
            start=_EPOCH + t0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes=dict(attributes),
        )
        stack.append(sp)
        try:
            yield sp
        except BaseException:
            sp.attributes.setdefault("error", True)
            raise
        finally:
            sp.duration = time.perf_counter() - t0
            stack.pop()
            with self._lock:
                self.finished.append(sp)

    def traced(self, name: Optional[str] = None, category: str = "repro"):
        """Decorator form of :meth:`span` (span named after the function)."""

        def decorate(func):
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(span_name, category=category):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # -- worker shipping ------------------------------------------------------
    def mark(self) -> int:
        """Current length of the finished list (for :meth:`export_since`)."""
        with self._lock:
            return len(self.finished)

    def export_since(self, mark: int) -> List[Dict[str, Any]]:
        """Finished spans recorded after *mark*, as plain dicts."""
        with self._lock:
            return [sp.to_dict() for sp in self.finished[mark:]]

    def ingest(
        self, spans: List[Dict[str, Any]], parent_id: Optional[str] = None
    ) -> List[Span]:
        """Adopt externally recorded spans (e.g. shipped from a worker).

        Spans without a parent re-parent under *parent_id*, so a worker's
        subtree hangs off the coordinator's stage span in the exported
        timeline.  Returns the adopted spans.
        """
        adopted = [Span.from_dict(d) for d in spans]
        if parent_id is not None:
            for sp in adopted:
                if sp.parent_id is None:
                    sp.parent_id = parent_id
                    sp.attributes.setdefault("reparented", True)
        with self._lock:
            self.finished.extend(adopted)
        return adopted

    def snapshot(self) -> List[Span]:
        """A copy of the finished-span list."""
        with self._lock:
            return list(self.finished)

    def clear(self) -> None:
        with self._lock:
            self.finished.clear()
