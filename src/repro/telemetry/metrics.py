"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric side of the telemetry layer: where spans say
*when* something happened, metrics say *how much* — bytes migrated by
reason, kernel launches by name, sweep points per stage, cache hit
ratios.  Metrics are keyed by ``(name, labels)``; asking for the same
key returns the same instrument, so instrumented code never needs to
pre-register anything.

Histograms use fixed bucket boundaries chosen at creation (no dynamic
rebinning — snapshots from different processes merge by plain addition).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DURATION_BUCKETS",
    "BYTES_BUCKETS",
]

Number = Union[int, float]

#: Default duration buckets (seconds): 1 us .. 100 s, decade steps.
DURATION_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0
)

#: Default size buckets (bytes): 4 KiB page .. 16 GiB.
BYTES_BUCKETS: Tuple[float, ...] = tuple(
    4096.0 * 4 ** i for i in range(12)
)


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (int or float)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value: Number = 0
        self._lock = lock

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name,
                "labels": self.labels, "value": self.value}


class Gauge:
    """Last-written value (settable both ways)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value: Optional[Number] = None
        self._lock = lock

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name,
                "labels": self.labels, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with count/sum aggregates.

    ``boundaries`` are upper bounds of the first ``len(boundaries)``
    buckets; one overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "labels", "boundaries", "bucket_counts",
                 "count", "total", "_lock")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        boundaries: Sequence[float],
        lock: threading.Lock,
    ):
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} boundaries must be strictly increasing, "
                f"got {boundaries!r}"
            )
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._lock = lock

    def observe(self, value: Number) -> None:
        idx = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.bucket_counts[idx] += 1
            self.count += 1
            self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": self.labels,
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, tuple], Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any], *args):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(
                    name, {k: str(v) for k, v in sorted(labels.items())},
                    *args, self._lock,
                )
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r}{labels!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DURATION_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get(Histogram, name, labels, boundaries)

    # -- queries --------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> Optional[Number]:
        """Current value of a counter/gauge, or ``None`` if absent."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
        return getattr(metric, "value", None) if metric is not None else None

    def total(self, name: str) -> Number:
        """Sum of a counter's value across every label set."""
        with self._lock:
            metrics = [m for (n, _), m in self._metrics.items() if n == name]
        return sum(m.value or 0 for m in metrics if isinstance(m, Counter))

    def collect(self) -> List[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda kv: kv[0])
        return [metric for _, metric in items]

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-serializable dump of every instrument."""
        return [m.to_dict() for m in self.collect()]

    def merge(self, snapshot: List[Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another registry/process into this one.

        Counters and histogram buckets add; gauges take the incoming value.
        """
        for entry in snapshot:
            labels = entry.get("labels", {})
            kind = entry.get("type")
            if kind == "counter":
                if entry["value"]:
                    self.counter(entry["name"], **labels).add(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"], entry["boundaries"], **labels
                )
                with hist._lock:
                    for i, n in enumerate(entry["bucket_counts"]):
                        hist.bucket_counts[i] += n
                    hist.count += entry["count"]
                    hist.total += entry["sum"]

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
