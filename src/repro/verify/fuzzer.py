"""Seeded directive/config fuzzer over the paper's parameter space.

A :class:`FuzzCase` is a pure function of ``(seed, index)``: every draw
is a SHA-256 digest of ``seed:index:tag`` (the same scheme
:class:`~repro.faults.plan.FaultPlan` uses for its probe draws), so a
seed reproduces the identical case list byte for byte on any platform —
no global RNG state, no ordering hazards.

Case kinds (see :data:`CASE_KINDS`):

``exec``
    A concrete reduction configuration — dtype pairing, element count,
    (teams, V, threads) or the baseline heuristic path, workload
    distribution — run through every independent execution path by the
    differential oracles, including the metamorphic checks.
``directive``
    A *valid* ``#pragma omp`` source line with shuffled clause order,
    noisy whitespace and line continuations; the parser must normalize
    it to the same :class:`~repro.openmp.directives.Directive` every
    time and the front end must compile it.
``reject``
    A deliberately-invalid pragma or a non-canonical/unsupported loop
    (the paper's Listing 4 ``i = i + V`` form included); the front end
    must reject it with the *same* error class and diagnostic code on
    every attempt — silent acceptance or a shifting diagnostic is a
    conformance divergence.
``sweep-cache``
    A small batch of sweep points run uncached, then twice through a
    fresh persistent cache; all three result lists must be byte-equal
    under canonical JSON.
``coexec``
    A co-execution p-sweep case (allocation site x unified-memory mode)
    whose every measurement value must match the serial ground truth.
``service``
    The same point submitted through the in-process service scheduler
    (admission -> batcher -> scheduler) and through the direct executor
    path; the raw result records must be byte-identical.
``op-exec``
    An *extended-identifier* execution case — ``min`` / ``max`` /
    ``argmax`` / ``dot`` or the fused ``sum+max`` clause pair — on one
    of the named machine profiles (:data:`PROFILES`), differentially
    checked against the exact oracles plus op-specific metamorphic
    transforms and the slab-vs-scalar byte-identity oracle.
``op-reject``
    A deliberately-invalid *extended* reduction (unknown identifier
    spelling, fused duplicate list item, ``dot`` without its pair,
    ``argmax`` into a float result, fused clause with a bad second
    identifier); the front end must refuse it with the same stable
    diagnostic code every time.

The op kinds ride an *interleaved* stream: every fourth emitted slot is
an op case drawn from a disjoint index namespace
(:data:`OP_INDEX_BASE`), so the historical kinds keep their exact
``(seed, index)`` draws — adding ops renumbered **nothing** and every
pre-existing per-case digest is unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.workloads import WORKLOAD_KINDS
from ..errors import SpecError
from ..sweep.fingerprint import canonical_json

__all__ = [
    "CASE_KINDS",
    "FuzzCase",
    "OPS",
    "OP_CASE_KINDS",
    "OP_INDEX_BASE",
    "OP_REJECT_MUTATIONS",
    "PROFILES",
    "case_digest",
    "case_list_digest",
    "generate_cases",
]

#: Case kinds and their relative weights in a generated stream.
#: Frozen: the weights parameterize the historical ``(seed, index)``
#: draws; the op kinds live on a separate interleaved stream instead of
#: a new row here precisely so these never change.
CASE_KINDS: Tuple[Tuple[str, int], ...] = (
    ("exec", 55),
    ("directive", 15),
    ("reject", 15),
    ("sweep-cache", 5),
    ("coexec", 5),
    ("service", 5),
)

#: Kinds of the interleaved extended-op stream (not weight-drawn: every
#: fourth emitted slot is an op case, every eighth op case a reject).
OP_CASE_KINDS: Tuple[str, ...] = ("op-exec", "op-reject")

#: Index namespace for op-stream draws — disjoint from the historical
#: stream's 0..N indexes so no existing draw is ever re-rolled.
OP_INDEX_BASE = 1_000_000

#: Extended reduction spellings the op stream exercises (``sum+max`` is
#: the fused two-clause form).
OPS: Tuple[str, ...] = ("min", "max", "argmax", "dot", "sum+max")

#: Machine profiles the op stream cycles through.
PROFILES: Tuple[str, ...] = ("gh200", "v100", "a100")

_DTYPES = ("int8", "int32", "int64", "float32", "float64")

#: Element-count palette (multiplied by V so M % V == 0 always holds).
_BASE_ELEMENTS = (1, 2, 3, 17, 255, 256, 1000, 4096, 65536)

_TEAMS = (128, 256, 512, 1024, 4096, 16384, 65536)
_V = (1, 2, 4, 8, 16, 32)
_THREADS = (32, 64, 128, 256, 512, 1024)

_WORKLOADS = tuple(sorted(WORKLOAD_KINDS))

#: Mutation families for ``reject`` cases.  Each name maps to a reason
#: the front end (parser, clause checker, canonical-form checker or the
#: NVHPC increment restriction) must refuse the case.
REJECT_MUTATIONS = (
    "unknown-clause",
    "unbalanced-parens",
    "not-a-pragma",
    "bad-reduction-identifier",
    "num_teams-missing-arg",
    "non-offload-directive",
    "listing4-increment",
    "noncanonical-test-op",
)

#: Mutation families for ``op-reject`` cases.  Each maps to a stable
#: diagnostic contract: the front end must refuse with the same error
#: class and code on every attempt.
OP_REJECT_MUTATIONS = (
    "unknown-op-spelling",     # reduction(argmin:sum) etc. -> parse error
    "fused-duplicate-var",     # same list item in two clauses -> OMP-RED-201
    "dot-missing-pair",        # dot with a 1-array loop -> NVHPC-OMP-201
    "argmax-float-result",     # argmax into float R -> OMP-RED-101
    "fused-bad-identifier",    # valid clause + reduction(avg:...) -> parse
)


def _draw(seed: int, index: int, tag: str) -> float:
    """Deterministic uniform draw in [0, 1) for ``(seed, index, tag)``."""
    digest = hashlib.sha256(f"{seed}:{index}:{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _choice(seed: int, index: int, tag: str, options: Sequence):
    return options[int(_draw(seed, index, tag) * len(options)) % len(options)]


def _weighted_kind(seed: int, index: int) -> str:
    total = sum(weight for _, weight in CASE_KINDS)
    roll = _draw(seed, index, "kind") * total
    acc = 0.0
    for kind, weight in CASE_KINDS:
        acc += weight
        if roll < acc:
            return kind
    return CASE_KINDS[-1][0]  # pragma: no cover - roll < total always


@dataclass(frozen=True)
class FuzzCase:
    """One generated verification case (JSON-serializable, hashable id)."""

    index: int
    seed: int
    kind: str
    dtype: str = "int32"
    result_dtype: str = "int32"
    elements: int = 1
    teams: Optional[int] = None
    v: int = 1
    threads: int = 256
    workload: str = "uniform"
    data_seed: int = 0
    trials: int = 5
    site: str = "A1"
    unified_memory: bool = True
    pragma: Optional[str] = None
    mutation: Optional[str] = None
    op: Optional[str] = None
    profile: Optional[str] = None
    extras: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "index": self.index,
            "seed": self.seed,
            "kind": self.kind,
            "dtype": self.dtype,
            "result_dtype": self.result_dtype,
            "elements": self.elements,
            "teams": self.teams,
            "v": self.v,
            "threads": self.threads,
            "workload": self.workload,
            "data_seed": self.data_seed,
            "trials": self.trials,
            "site": self.site,
            "unified_memory": self.unified_memory,
            "pragma": self.pragma,
            "mutation": self.mutation,
        }
        # Op-stream fields are emitted only when set so every historical
        # case document — and therefore every pinned per-case digest —
        # is byte-identical to the pre-op releases.
        if self.op is not None:
            doc["op"] = self.op
        if self.profile is not None:
            doc["profile"] = self.profile
        if self.extras:
            doc["extras"] = dict(self.extras)
        return doc

    @property
    def case_id(self) -> str:
        """Stable content hash of this case (used in reports)."""
        return case_digest(self)

    def describe(self) -> str:
        if self.kind in ("directive", "reject", "op-reject"):
            return f"#{self.index} {self.kind}[{self.mutation or 'valid'}]"
        cfg = (
            "baseline"
            if self.teams is None
            else f"teams={self.teams} v={self.v} threads={self.threads}"
        )
        tags = f" op={self.op}" if self.op else ""
        tags += f" profile={self.profile}" if self.profile else ""
        return (
            f"#{self.index} {self.kind} {self.dtype}->{self.result_dtype} "
            f"M={self.elements} [{cfg}] {self.workload}{tags}"
        )


def _result_dtype_for(seed: int, index: int, dtype: str) -> str:
    if dtype == "int8":
        return "int64"  # the paper's C2 pairing
    if dtype == "int32" and _draw(seed, index, "widen") < 0.25:
        return "int64"  # mixed T/R pairing pressure
    if dtype == "float32" and _draw(seed, index, "widen") < 0.25:
        return "float64"
    return dtype


def _config_draw(seed: int, index: int) -> Tuple[Optional[int], int, int]:
    """(teams, v, threads); teams=None selects the baseline path."""
    if _draw(seed, index, "baseline") < 0.25:
        return None, 1, 256
    v = _choice(seed, index, "v", _V)
    teams = _choice(seed, index, "teams", [t for t in _TEAMS if t >= v])
    threads = _choice(seed, index, "threads", _THREADS)
    return teams, v, threads


def _exec_case(seed: int, index: int, kind: str) -> FuzzCase:
    dtype = _choice(seed, index, "dtype", _DTYPES)
    teams, v, threads = _config_draw(seed, index)
    base = _choice(seed, index, "elements", _BASE_ELEMENTS)
    elements = base * v
    return FuzzCase(
        index=index,
        seed=seed,
        kind=kind,
        dtype=dtype,
        result_dtype=_result_dtype_for(seed, index, dtype),
        elements=elements,
        teams=teams,
        v=v,
        threads=threads,
        workload=_choice(seed, index, "workload", _WORKLOADS),
        data_seed=int(_draw(seed, index, "data-seed") * (1 << 31)),
        trials=_choice(seed, index, "trials", (1, 5, 20)),
        site=_choice(seed, index, "site", ("A1", "A2")),
        unified_memory=_draw(seed, index, "um") < 0.7,
    )


_CLAUSE_POOL = (
    "num_teams({teams})",
    "thread_limit({threads})",
    "reduction(+:sum)",
)


def _valid_pragma(seed: int, index: int) -> Tuple[str, FuzzCase]:
    """A syntactically-noisy but valid Listing-2/5-family pragma."""
    teams, v, threads = _config_draw(seed, index)
    clauses: List[str] = ["reduction(+:sum)"]
    if teams is not None:
        clauses.append(f"num_teams({teams // v})")
        clauses.append(f"thread_limit({threads})")
    # Deterministic clause shuffle: sort by a per-clause draw.
    clauses.sort(key=lambda c: _draw(seed, index, f"shuffle:{c}"))
    sep = _choice(seed, index, "sep", (" ", "  ", " \\\n    "))
    spacing = _choice(seed, index, "spacing", ("", " "))
    text = (
        f"#pragma omp{spacing} target teams distribute parallel for "
        + sep.join(clauses)
    )
    base = _choice(seed, index, "elements", _BASE_ELEMENTS)
    case = FuzzCase(
        index=index,
        seed=seed,
        kind="directive",
        dtype=_choice(seed, index, "dtype", _DTYPES),
        elements=base * v,
        teams=teams,
        v=v,
        threads=threads,
        pragma=text,
    )
    return text, case


def _reject_case(seed: int, index: int) -> FuzzCase:
    mutation = _choice(seed, index, "mutation", REJECT_MUTATIONS)
    teams = _choice(seed, index, "teams", _TEAMS)
    threads = _choice(seed, index, "threads", _THREADS)
    v = _choice(seed, index, "v", [x for x in _V if x > 1])
    base = _choice(seed, index, "elements", _BASE_ELEMENTS)
    pragma: Optional[str]
    if mutation == "unknown-clause":
        bad = _choice(seed, index, "bad-clause",
                      ("collapse(2)", "grainsize(4)", "frobnicate",
                       "numteams(8)"))
        pragma = (
            "#pragma omp target teams distribute parallel for "
            f"{bad} reduction(+:sum)"
        )
    elif mutation == "unbalanced-parens":
        pragma = (
            "#pragma omp target teams distribute parallel for "
            f"num_teams({teams} reduction(+:sum)"
        )
    elif mutation == "not-a-pragma":
        pragma = _choice(seed, index, "not-pragma",
                         ("#pragma acc parallel loop reduction(+:sum)",
                          "pragma omp target teams distribute parallel for",
                          "#pragma omp_target teams"))
    elif mutation == "bad-reduction-identifier":
        ident = _choice(seed, index, "bad-ident", ("%", "<<", "avg", "sum"))
        pragma = (
            "#pragma omp target teams distribute parallel for "
            f"reduction({ident}:sum)"
        )
    elif mutation == "num_teams-missing-arg":
        pragma = (
            "#pragma omp target teams distribute parallel for "
            "num_teams() reduction(+:sum)"
        )
    elif mutation == "non-offload-directive":
        pragma = _choice(seed, index, "host-directive",
                         ("#pragma omp parallel for reduction(+:sum)",
                          "#pragma omp target parallel for reduction(+:sum)"))
    else:
        # listing4-increment / noncanonical-test-op reject at compile
        # time with a canonical Listing-5 pragma.
        pragma = (
            "#pragma omp target teams distribute parallel for "
            "reduction(+:sum)"
        )
    return FuzzCase(
        index=index,
        seed=seed,
        kind="reject",
        dtype=_choice(seed, index, "dtype", _DTYPES),
        elements=base * v,
        teams=teams,
        v=v,
        threads=threads,
        pragma=pragma,
        mutation=mutation,
    )


def _op_exec_case(seed: int, index: int) -> FuzzCase:
    """One extended-op execution case (op x dtype x profile)."""
    op = _choice(seed, index, "op", OPS)
    profile = _choice(seed, index, "profile", PROFILES)
    dtype = _choice(seed, index, "dtype", _DTYPES)
    if op == "argmax":
        result_dtype = "int64"  # index semantics: R is pinned
    else:
        result_dtype = _result_dtype_for(seed, index, dtype)
    teams, v, threads = _config_draw(seed, index)
    base = _choice(seed, index, "elements", _BASE_ELEMENTS)
    workload = _choice(seed, index, "workload", _WORKLOADS)
    if op == "dot" and dtype == "float32" and workload == "extremes":
        # Products of two ±1e18 extremes summed over a large M overflow
        # float32 to ±inf along grouping-dependent paths; the oracle
        # comparison would then depend on accumulation order.  Dot keeps
        # the other five distributions on float32.
        workload = "uniform"
    return FuzzCase(
        index=index,
        seed=seed,
        kind="op-exec",
        dtype=dtype,
        result_dtype=result_dtype,
        elements=base * v,
        teams=teams,
        v=v,
        threads=threads,
        workload=workload,
        data_seed=int(_draw(seed, index, "data-seed") * (1 << 31)),
        trials=_choice(seed, index, "trials", (1, 5, 20)),
        op=op,
        profile=profile,
    )


def _op_reject_case(seed: int, index: int) -> FuzzCase:
    """One extended-op reject case with a stable-diagnostic contract."""
    mutation = _choice(seed, index, "op-mutation", OP_REJECT_MUTATIONS)
    profile = _choice(seed, index, "profile", PROFILES)
    v = _choice(seed, index, "v", [x for x in _V if x > 1])
    base = _choice(seed, index, "elements", _BASE_ELEMENTS)
    head = "#pragma omp target teams distribute parallel for "
    result_dtype = "int64"
    if mutation == "unknown-op-spelling":
        ident = _choice(seed, index, "bad-op",
                        ("argmin", "maximum", "amax", "minmax"))
        pragma = head + f"reduction({ident}:sum)"
    elif mutation == "fused-duplicate-var":
        second = _choice(seed, index, "dup-op", ("max", "min", "*"))
        pragma = head + f"reduction(+:sum) reduction({second}:sum)"
    elif mutation == "dot-missing-pair":
        pragma = head + "reduction(dot:sum)"
    elif mutation == "argmax-float-result":
        pragma = head + "reduction(argmax:sum)"
        result_dtype = _choice(seed, index, "float-r",
                               ("float32", "float64"))
    else:  # fused-bad-identifier
        bad = _choice(seed, index, "bad-op", ("avg", "median", "<<"))
        pragma = head + f"reduction(max:peak) reduction({bad}:sum)"
    return FuzzCase(
        index=index,
        seed=seed,
        kind="op-reject",
        dtype=_choice(seed, index, "dtype", _DTYPES),
        result_dtype=result_dtype,
        elements=base * v,
        v=v,
        pragma=pragma,
        mutation=mutation,
        profile=profile,
    )


def _sweep_cache_case(seed: int, index: int) -> FuzzCase:
    case = _exec_case(seed, index, "sweep-cache")
    # A batch of distinct points: vary teams around the drawn one.
    teams = case.teams or 256
    points = sorted({teams, max(128, teams // 2), min(65536, teams * 2)})
    return FuzzCase(
        **{**case.__dict__, "teams": teams,
           "extras": (("point_teams", list(points)),)}
    )


def generate_cases(
    seed: int, count: int, kinds: Optional[Sequence[str]] = None
) -> List[FuzzCase]:
    """Generate *count* cases for *seed* (deterministic, order-stable).

    ``kinds`` restricts generation to a subset of :data:`CASE_KINDS` /
    :data:`OP_CASE_KINDS` names (the full stream is still drawn, so case
    *i* is identical whether or not other kinds are filtered out —
    filtering never renumbers).

    Every fourth emitted slot is an op-stream case (every eighth op case
    an ``op-reject``) drawn from the disjoint :data:`OP_INDEX_BASE`
    index namespace; the other slots replay the historical weighted
    stream with its original 0-based indexes, so every pre-op case keeps
    its exact draws and per-case digest.
    """
    if count < 1:
        raise SpecError(f"cases must be >= 1, got {count}")
    known = tuple(name for name, _ in CASE_KINDS) + OP_CASE_KINDS
    if kinds is not None:
        unknown = sorted(set(kinds) - set(known))
        if unknown:
            raise SpecError(
                f"unknown case kinds {unknown}; expected a subset of "
                f"{list(known)}"
            )
    cases: List[FuzzCase] = []
    index = 0
    op_index = 0
    slot = 0
    while len(cases) < count:
        if slot % 4 == 3:
            op_slot = OP_INDEX_BASE + op_index
            if op_index % 8 == 7:
                case = _op_reject_case(seed, op_slot)
            else:
                case = _op_exec_case(seed, op_slot)
            op_index += 1
        else:
            kind = _weighted_kind(seed, index)
            if kind == "exec":
                case = _exec_case(seed, index, "exec")
            elif kind == "directive":
                _, case = _valid_pragma(seed, index)
            elif kind == "reject":
                case = _reject_case(seed, index)
            elif kind == "sweep-cache":
                case = _sweep_cache_case(seed, index)
            elif kind == "coexec":
                base = _exec_case(seed, index, "coexec")
                # Co-execution sweeps time out of proportion with M; keep
                # the functional sizes small and the p grid coarse.
                case = FuzzCase(
                    **{**base.__dict__,
                       "elements": min(base.elements, 4096 * base.v),
                       "trials": 5}
                )
            else:
                case = _exec_case(seed, index, "service")
            index += 1
        slot += 1
        if kinds is not None and case.kind not in kinds:
            continue
        cases.append(case)
    return cases


#: Hex length of a per-case digest (64 SHA-256 nibbles truncated).
CASE_DIGEST_LEN = 16


def case_digest(case: Any) -> str:
    """The canonical per-case digest: SHA-256 of canonical JSON, truncated.

    Accepts anything with a ``to_dict()`` method (a :class:`FuzzCase`)
    or a plain JSON-serializable document.  This is the *public* form of
    :attr:`FuzzCase.case_id` — checkpoint/resume in :mod:`repro.jobs`
    keys completed sweep points by this digest, so it must stay stable
    across platforms and releases the way the fuzzer's case ids do.
    """
    doc = case.to_dict() if hasattr(case, "to_dict") else case
    return hashlib.sha256(
        canonical_json(doc).encode()
    ).hexdigest()[:CASE_DIGEST_LEN]


def case_list_digest(cases: Sequence[FuzzCase]) -> str:
    """SHA-256 over the canonical JSON of the whole case list.

    Two runs with the same seed/count must produce the same digest —
    the acceptance criterion for reproducible fuzzing.
    """
    doc = [case.to_dict() for case in cases]
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()
