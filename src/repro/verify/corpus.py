"""Golden corpus: byte-exact pinned outputs for the paper's figures.

The files under ``tests/golden/`` are the canonical fixtures for the
paper's Table 1 / Figure 1-5 configurations, computed on a machine with
the functional cap pinned to :data:`GOLDEN_CAP` (the cap changes the
workload values, so it is part of the corpus identity, recorded in each
file's ``meta``).  ``repro verify golden`` recomputes every entry and
compares against the stored values under canonical JSON — any byte of
drift fails; ``repro verify bless`` regenerates the files after an
*intentional* model change (review the diff before committing).

Float values survive the JSON round trip exactly (Python serializes the
shortest round-tripping repr), so "canonical JSON equal" really is
byte-exact on every number.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG
from ..core.cases import PAPER_CASES, case_by_name
from ..core.coexec import AllocationSite, CPU_PART_GRID
from ..core.machine import Machine
from ..core.optimized import KernelConfig
from ..core.timing import TRIALS
from ..core.tuning import TEAMS_GRID
from ..errors import SpecError
from ..evaluation.figures import paper_optimized_config
from ..sweep.executor import CoexecRequest, SweepExecutor
from ..sweep.fingerprint import canonical_json

__all__ = ["GOLDEN_CAP", "GoldenCorpus", "default_golden_dir"]

#: Functional-cap the corpus machine is pinned to.  Part of the corpus
#: identity: changing it changes every workload array, hence every value.
GOLDEN_CAP = 65536


def default_golden_dir() -> Path:
    """``tests/golden/`` at the repository root (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def _entry_table1(executor: SweepExecutor) -> Dict[str, Any]:
    """Table 1: baseline vs paper-optimized bandwidth for C1-C4."""
    rows = {}
    for case in PAPER_CASES:
        records = executor.gpu_points(
            case,
            [None, paper_optimized_config(case)],
            trials=TRIALS,
            verify=False,
            stage="golden-table1",
        )
        rows[case.name] = {"baseline": records[0], "optimized": records[1]}
    return {"rows": rows}


def _entry_fig1(executor: SweepExecutor) -> Dict[str, Any]:
    """Figure 1 family: the teams sweep for every case at the paper's V."""
    sweeps = {}
    for case in PAPER_CASES:
        v = paper_optimized_config(case).v
        configs = [
            KernelConfig(teams=t, v=v, threads=256)
            for t in TEAMS_GRID
            if t >= v
        ]
        records = executor.gpu_points(
            case, configs, trials=TRIALS, verify=False, stage="golden-fig1"
        )
        sweeps[case.name] = {
            "v": v,
            "teams": [c.teams for c in configs],
            "records": records,
        }
    return {"sweeps": sweeps}


def _entry_coexec(executor: SweepExecutor) -> Dict[str, Any]:
    """Figures 3-5 family: the full Listing-8 p sweep, both sites."""
    case = case_by_name("C3")
    config = paper_optimized_config(case)
    out = {}
    for site in (AllocationSite.A1, AllocationSite.A2):
        records = executor.run(
            "coexec_sweep",
            [(
                CoexecRequest(
                    case=case,
                    site=site,
                    config=config,
                    p_grid=CPU_PART_GRID,
                    trials=TRIALS,
                    verify=False,
                    unified_memory=True,
                ),
            )],
            stage="golden-coexec",
        )
        out[site.value] = records[0]
    return {"case": case.name, "config": config.label(), "sites": out}


#: The op-matrix entry's scenarios: reduction identifier -> paper cases
#: whose result type admits it (argmax demands an int64 accumulator, so
#: it pins to C2, the paper's int8->int64 pairing).
_OP_MATRIX = {
    "+": ("C1", "C3"),
    "min": ("C1", "C3"),
    "max": ("C1", "C3"),
    "argmax": ("C2",),
    "dot": ("C1", "C3"),
}


def _entry_op_matrix(executor: SweepExecutor) -> Dict[str, Any]:
    """Extended-op records on every machine profile.

    One gpu_point per (profile, identifier, case) at the paper-optimized
    config — the cross-profile contract: min/max/argmax/dot values must
    be profile-independent (the functional result never depends on the
    modelled hardware), while timings pin each profile's model.
    """
    from dataclasses import replace as dc_replace

    from ..hardware.profiles import MACHINE_PROFILES

    base_config = executor.machine.config
    profiles: Dict[str, Any] = {}
    for profile in sorted(MACHINE_PROFILES):
        machine = Machine(
            config=dc_replace(base_config, machine_profile=profile)
        )
        ex = SweepExecutor(machine, workers=1, cache=None)
        ops: Dict[str, Any] = {}
        for op, case_names in _OP_MATRIX.items():
            rows = {}
            for case_name in case_names:
                case = case_by_name(case_name)
                records = ex.gpu_points(
                    case,
                    [paper_optimized_config(case)],
                    trials=TRIALS,
                    verify=False,
                    stage="golden-op-matrix",
                    op=op,
                )
                rows[case_name] = records[0]
            ops[op] = rows
        profiles[profile] = ops
    return {"profiles": profiles}


_ENTRIES = {
    "table1": _entry_table1,
    "fig1": _entry_fig1,
    "coexec": _entry_coexec,
    "op_matrix": _entry_op_matrix,
}


class GoldenCorpus:
    """Compute, check and bless the golden files.

    Parameters
    ----------
    machine:
        Omit to get the pinned corpus machine (default calibration and
        hardware, functional cap :data:`GOLDEN_CAP`).  Passing a custom
        machine is for tests only — its outputs will not match the
        committed files.
    directory:
        Where the golden JSON files live; defaults to ``tests/golden/``.
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        directory: "Path | str | None" = None,
    ):
        self.machine = machine or Machine(
            config=DEFAULT_CONFIG.with_cap(GOLDEN_CAP)
        )
        self.directory = Path(directory) if directory else default_golden_dir()
        # Serial and uncached: corpus values must never depend on what a
        # previous run left in the persistent cache.
        self.executor = SweepExecutor(self.machine, workers=1, cache=None)

    @property
    def names(self) -> List[str]:
        return sorted(_ENTRIES)

    def _select(self, names: Optional[Sequence[str]]) -> List[str]:
        if names is None:
            return self.names
        unknown = sorted(set(names) - set(_ENTRIES))
        if unknown:
            raise SpecError(
                f"unknown golden entries {unknown}; expected a subset of "
                f"{self.names}"
            )
        return sorted(names)

    def path_for(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def compute(self, name: str) -> Dict[str, Any]:
        """Recompute one entry's document (without its meta header)."""
        return _ENTRIES[name](self.executor)

    def _document(self, name: str) -> Dict[str, Any]:
        return {
            "meta": {
                "entry": name,
                "functional_cap": self.machine.config.functional_elements_cap,
                "trials": TRIALS,
            },
            "data": self.compute(name),
        }

    def bless(self, names: Optional[Sequence[str]] = None) -> List[Path]:
        """(Re)write the selected golden files; returns the paths."""
        self.directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name in self._select(names):
            path = self.path_for(name)
            path.write_text(
                json.dumps(self._document(name), sort_keys=True, indent=2)
                + "\n"
            )
            written.append(path)
        return written

    def check(self, names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """Recompute and compare; returns a JSON-serializable report.

        Each entry's status is ``"ok"``, ``"missing"`` (file absent —
        run bless) or ``"mismatch"`` (values drifted).  The report's
        ``ok`` is true only when every selected entry is ``"ok"``.
        """
        entries: Dict[str, Any] = {}
        for name in self._select(names):
            path = self.path_for(name)
            if not path.exists():
                entries[name] = {"status": "missing", "path": str(path)}
                continue
            stored = json.loads(path.read_text())
            current = self._document(name)
            if canonical_json(stored) == canonical_json(current):
                entries[name] = {"status": "ok", "path": str(path)}
            else:
                entries[name] = {
                    "status": "mismatch",
                    "path": str(path),
                    "detail": _first_difference(stored, current),
                }
        return {
            "ok": all(e["status"] == "ok" for e in entries.values()),
            "entries": entries,
        }


def _first_difference(stored: Any, current: Any, path: str = "$") -> str:
    """Human-readable pointer to the first differing leaf."""
    if type(stored) is not type(current):
        return f"{path}: type {type(stored).__name__} != {type(current).__name__}"
    if isinstance(stored, dict):
        for key in sorted(set(stored) | set(current)):
            if key not in stored:
                return f"{path}.{key}: only in recomputed"
            if key not in current:
                return f"{path}.{key}: only in stored"
            if canonical_json(stored[key]) != canonical_json(current[key]):
                return _first_difference(
                    stored[key], current[key], f"{path}.{key}"
                )
        return f"{path}: unknown difference"
    if isinstance(stored, list):
        if len(stored) != len(current):
            return f"{path}: length {len(stored)} != {len(current)}"
        for i, (s, c) in enumerate(zip(stored, current)):
            if canonical_json(s) != canonical_json(c):
                return _first_difference(s, c, f"{path}[{i}]")
        return f"{path}: unknown difference"
    return f"{path}: stored {stored!r} != recomputed {current!r}"
