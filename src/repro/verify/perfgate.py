"""Perf-regression gate: time the hot paths, compare to a baseline.

Eight benchmarks cover the tier-1-critical paths the repo's earlier PRs
optimized, each reported as the **best of N repeats** (minimum is the
standard noise-robust statistic for microbenchmarks):

* ``sim_microbench`` — one optimized Listing-5 measurement through the
  full compile -> launch -> perf-model -> functional-execute pipeline
  (the unit of work every sweep point pays);
* ``warm_cache_sweep`` — a Figure-1-style teams sweep answered entirely
  from a pre-warmed persistent result cache (the PR-1 fast path that
  makes ``reproduce_paper.py`` ~100x faster than the seed);
* ``service_p99`` — p99 latency of in-process service submissions
  against a warm cache (the PR-3 latency budget), via the loadgen's
  nearest-rank percentile;
* ``slab_microbench`` — amortized per-point cost of one batch-vectorized
  slab evaluation (:mod:`repro.sim.batch`) over >= 1024 distinct points;
* ``pool_transport`` — the shared-memory slab transport roundtrip
  (:mod:`repro.sweep.shm`): pack, attach, unpack, collate, unlink for a
  4096-point chunk;
* ``telemetry_overhead`` — the sim microbench unit of work with the
  telemetry layer *enabled* (span recording on), alongside the disabled
  time, so the cost of observability itself is gated;
* ``stream_write`` — amortized per-record cost of the jobs result
  store's append path (:mod:`repro.jobs.store`): canonical-JSON encode,
  sequential-shard append, rotation;
* ``checkpoint_overhead`` — a warm-cache streamed sweep through
  :meth:`~repro.sweep.executor.SweepExecutor.run_streaming` with
  checkpointing *on* (store flush + checkpoint + manifest every
  interval), alongside the checkpoint-free time, gating the durability
  tax of :mod:`repro.jobs` (acceptance target: < 5% overhead).

``repro verify perf`` writes the current numbers to ``BENCH_verify.json``
and compares them against the committed baseline with a noise-aware
threshold: a benchmark regresses only when it is ``threshold`` times
slower than baseline (default 4x — CI machines are noisy and shared;
the gate is for order-of-magnitude rot, not 5% drift).  Speed-ups and
new benchmarks never fail the gate.
"""

from __future__ import annotations

import asyncio
import json
import platform
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..config import DEFAULT_CONFIG
from ..core.cases import case_by_name
from ..core.machine import Machine
from ..core.optimized import KernelConfig
from ..core.timing import measure_gpu_reduction
from ..service.loadgen import percentile
from ..sweep.executor import SweepExecutor
from ..sweep.result_cache import open_result_cache

__all__ = [
    "BenchReport",
    "compare_benchmarks",
    "default_baseline_path",
    "run_perf_suite",
]

#: Default regression threshold: current/baseline ratio that fails.
DEFAULT_THRESHOLD = 4.0

#: Functional cap for the benchmark machine — big enough to exercise the
#: vectorized paths, small enough that a full suite run stays < 10 s.
_BENCH_CAP = 1 << 16

_SWEEP_TEAMS = (128, 512, 2048, 8192, 32768)
_SERVICE_SUBMITS = 40


def default_baseline_path() -> Path:
    """The committed baseline: ``BENCH_verify.json`` at the repo root."""
    return Path(__file__).resolve().parents[3] / "BENCH_verify.json"


@dataclass
class BenchReport:
    """Timings from one perf-suite run."""

    benchmarks: Dict[str, Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"meta": self.meta, "benchmarks": self.benchmarks}

    def write(self, path: "Path | str") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n")
        return path

    def describe(self) -> str:
        lines = []
        for name, entry in sorted(self.benchmarks.items()):
            lines.append(f"{name}: {entry['seconds'] * 1e3:.2f} ms")
        return "\n".join(lines)


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_sim_microbench(machine: Machine, repeats: int) -> float:
    case = case_by_name("C1")
    config = KernelConfig(teams=4096, v=4, threads=256)

    def once() -> None:
        measure_gpu_reduction(machine, case, config, trials=200, verify=True)

    once()  # warm compile/workload caches out of the timed region
    return _best(once, repeats)


def _bench_warm_cache_sweep(machine: Machine, repeats: int) -> float:
    case = case_by_name("C1")
    configs = [KernelConfig(teams=t, v=4, threads=256) for t in _SWEEP_TEAMS]
    with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as tmp:
        executor = SweepExecutor(
            machine, workers=1, cache=open_result_cache(tmp)
        )
        executor.gpu_points(case, configs, trials=200, verify=False)  # warm

        def once() -> None:
            executor.gpu_points(case, configs, trials=200, verify=False)

        return _best(once, repeats)


def _bench_service_p99(machine: Machine, repeats: int) -> float:
    from ..service.api import SimRequest
    from ..service.scheduler import ReductionService, ServiceSettings

    case = case_by_name("C1")
    config = KernelConfig(teams=4096, v=4, threads=256)

    async def p99_once() -> float:
        with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as tmp:
            service = ReductionService(
                machine=machine,
                executor=SweepExecutor(
                    machine, workers=1, cache=open_result_cache(tmp)
                ),
                settings=ServiceSettings(degrade=False),
            )
            try:
                # First submit computes and fills the cache; the timed
                # population measures the warm fast path, like the PR-3
                # latency gate.
                await service.submit(
                    SimRequest(experiment="gpu", case=case, config=config,
                               trials=200)
                )
                latencies: List[float] = []
                for _ in range(_SERVICE_SUBMITS):
                    started = time.perf_counter()
                    response = await service.submit(
                        SimRequest(experiment="gpu", case=case,
                                   config=config, trials=200)
                    )
                    latencies.append(time.perf_counter() - started)
                    assert response.ok
                return percentile(latencies, 99)
            finally:
                await service.stop()

    return min(asyncio.run(p99_once()) for _ in range(repeats))


def _slab_payloads(count: int) -> List[tuple]:
    """At least *count* distinct, valid ``gpu_point`` payloads."""
    payloads: List[tuple] = []
    for name in ("C1", "C2", "C3", "C4"):
        case = case_by_name(name)
        for k in range(4, 17):
            for v in (1, 2, 4, 8, 16):
                for threads in (64, 128, 256, 512):
                    teams = 1 << k
                    if teams < v:
                        continue
                    payloads.append(
                        (case, KernelConfig(teams=teams, v=v,
                                            threads=threads), 200, False)
                    )
                    if len(payloads) >= count:
                        return payloads
    return payloads


def _bench_slab_microbench(machine: Machine, repeats: int) -> Dict[str, Any]:
    """Amortized per-point cost of one whole-slab evaluation (>= 1024)."""
    from ..sim.batch import evaluate_gpu_slab

    payloads = _slab_payloads(1024)

    def once() -> None:
        evaluate_gpu_slab(machine, payloads)

    once()  # warm compile/workload/value caches out of the timed region
    seconds = _best(once, repeats)
    return {
        "seconds": seconds,
        "points": len(payloads),
        "per_point_s": seconds / len(payloads),
    }


def _bench_pool_transport(machine: Machine, repeats: int) -> Dict[str, Any]:
    """Shared-memory slab transport roundtrip (no pool): pack a 4096-point
    request, attach + unpack it, pack the response slab, collate it, and
    unlink both segments."""
    from ..sim.batch import evaluate_gpu_slab
    from ..sweep import shm

    case = case_by_name("C1")
    payloads = [
        (case, KernelConfig(teams=1 << (4 + i % 12), v=4, threads=256),
         200, False)
        for i in range(4096)
    ]
    record = evaluate_gpu_slab(machine, payloads[:1])[0]
    records = [dict(record) for _ in payloads]

    def once() -> None:
        header = shm.pack_gpu_slab_request(payloads)
        try:
            shm.unpack_gpu_slab_request(header)
            response = shm.pack_gpu_slab_response(header["shm"], records)
            shm.unpack_gpu_slab_response(response)
        finally:
            shm.release_segment(header["shm"])
            shm.release_segment(shm.response_name(header["shm"]))

    once()
    seconds = _best(once, repeats)
    return {
        "seconds": seconds,
        "points": len(payloads),
        "per_point_s": seconds / len(payloads),
    }


def _bench_telemetry_overhead(
    machine: Machine, repeats: int
) -> Dict[str, Any]:
    """Enabled-vs-disabled telemetry cost of the sim-microbench unit."""
    from ..telemetry.state import configure, get_telemetry

    case = case_by_name("C1")
    config = KernelConfig(teams=4096, v=4, threads=256)

    def once() -> None:
        measure_gpu_reduction(machine, case, config, trials=200, verify=True)

    previous = get_telemetry().enabled
    try:
        configure(enabled=False)
        once()  # warm compile/workload caches out of the timed region
        disabled = _best(once, repeats)
        configure(enabled=True, reset=True)
        once()
        enabled = _best(once, repeats)
    finally:
        configure(enabled=previous, reset=True)
    return {
        "seconds": enabled,
        "disabled_s": disabled,
        "overhead_s": max(0.0, enabled - disabled),
        "overhead_ratio": enabled / disabled if disabled > 0 else 1.0,
    }


def _bench_stream_write(machine: Machine, repeats: int) -> Dict[str, Any]:
    """Amortized per-record append cost of the jobs result store."""
    from ..jobs.store import ResultStore

    record = {
        "case": "C1", "teams": 4096, "v": 4, "threads": 256,
        "trials": 200, "seconds": 1.234e-3, "bandwidth_gbs": 123.456,
    }
    digest = "0123456789abcdef"
    count = 4096

    with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as tmp:
        base = Path(tmp)
        runs = [0]

        def once() -> None:
            # A fresh store each run: appends are strictly sequential.
            runs[0] += 1
            store = ResultStore(base / f"run-{runs[0]}", shard_records=1024)
            for index in range(count):
                store.append(index, digest, record)
            store.flush()
            store.close()

        once()  # warm the allocator/import path out of the timed region
        seconds = _best(once, repeats)
    return {
        "seconds": seconds,
        "records": count,
        "per_record_s": seconds / count,
    }


def _bench_checkpoint_overhead(
    machine: Machine, repeats: int
) -> Dict[str, Any]:
    """Checkpointing-on vs -off cost of a warm-cache streamed sweep.

    Both variants stream the same ~4k warm points (the ~1k distinct
    grid cycled, so every chunk is a cache hit) through
    ``run_streaming`` into a real :class:`~repro.jobs.store.ResultStore`;
    the checkpointed one additionally performs
    :func:`repro.jobs.run_job`'s per-interval work at the JobSpec
    defaults (interval 1024, shard_records 8192): store flush plus an
    atomic checkpoint rewrite every interval, and the manifest/state
    rewrites on shard rotation / the first checkpoint, exactly as
    ``run_job``'s steady state does.

    The checkpoint cost is well under a millisecond per interval
    against ~16 ms of warm-cache point work — smaller than the run-to-
    run variance of a ~60 ms streamed run on a shared machine — so
    ``overhead_ratio`` is computed from the checkpoint callbacks timed
    *inside* the best checkpointed run (numerator and denominator from
    the same run, so run-to-run noise cancels) rather than from the
    difference of two independently noisy totals.  ``plain_s`` keeps
    the checkpointing-off A/B total for context.
    """
    from ..jobs.checkpoint import write_checkpoint
    from ..jobs.store import ResultStore, atomic_write_json

    distinct = _slab_payloads(2048)
    payloads = distinct * 4
    digest = "0123456789abcdef"
    interval = 1024

    with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as tmp:
        base = Path(tmp)
        executor = SweepExecutor(
            machine, workers=1, cache=open_result_cache(base / "cache")
        )
        try:
            executor.run("gpu_point", distinct, stage="perfgate-warm")
            runs = [0]

            def run_once(checkpointed: bool) -> float:
                """Stream once; returns seconds spent in checkpoints."""
                runs[0] += 1
                directory = base / f"run-{runs[0]}"
                store = ResultStore(directory, shard_records=8192)
                manifest_base = {"job_id": "jperfgate", "points_total":
                                 len(payloads)}
                manifest_shards = [-1]
                ckpt_s = [0.0]

                def sink(index: int, record: dict) -> None:
                    store.append(index, digest, record)

                checkpoint = None
                if checkpointed:
                    def checkpoint(done: int) -> None:
                        started = time.perf_counter()
                        store.flush()
                        write_checkpoint(
                            directory, job_id="jperfgate",
                            spec_digest="bench", points_digest="bench",
                            points_done=done,
                            points_total=len(payloads),
                        )
                        shards = len(store.shard_names())
                        if shards != manifest_shards[0]:
                            store.write_manifest(manifest_base)
                            if manifest_shards[0] < 0:
                                atomic_write_json(
                                    directory / "state.json",
                                    {"state": "CHECKPOINTED",
                                     "points_done": done,
                                     "points_total": len(payloads)},
                                )
                            manifest_shards[0] = shards
                        ckpt_s[0] += time.perf_counter() - started

                executor.run_streaming(
                    "gpu_point", iter(payloads), stage="perfgate-stream",
                    sink=sink, chunk_size=interval, checkpoint=checkpoint,
                )
                store.close()
                return ckpt_s[0]

            run_once(False)  # warm
            plain = checked = float("inf")
            overhead = float("inf")
            for _ in range(max(repeats, 5)):
                started = time.perf_counter()
                run_once(False)
                plain = min(plain, time.perf_counter() - started)
                started = time.perf_counter()
                ckpt = run_once(True)
                total = time.perf_counter() - started
                if total < checked:
                    checked = total
                    overhead = ckpt
        finally:
            executor.close()
    return {
        "seconds": checked,
        "plain_s": plain,
        "points": len(payloads),
        "checkpoint_interval": interval,
        "overhead_s": overhead,
        "overhead_ratio": checked / (checked - overhead)
        if checked > overhead else 1.0,
    }


def _bench_ring_lookup(machine: Machine, repeats: int) -> Dict[str, Any]:
    """Owner lookups against a populated consistent-hash ring.

    16 nodes x 64 vnodes is a bigger ring than any realistic deployment
    of this repo; the coordinator does one lookup (plus a preference
    walk on retry) per forwarded request and per job chunk, so lookup
    cost rides every cluster hot path.
    """
    from ..cluster.ring import HashRing

    ring = HashRing()
    for index in range(16):
        ring.add(f"node-{index:02d}")
    keys = [f"case-digest-{i}" for i in range(10_000)]

    def once() -> None:
        for key in keys:
            ring.lookup(key)

    once()  # warm the sorted-points cache out of the timed region
    seconds = _best(once, repeats)
    return {
        "seconds": seconds,
        "lookups": len(keys),
        "per_lookup_s": seconds / len(keys),
    }


def _bench_membership_tick(machine: Machine, repeats: int) -> Dict[str, Any]:
    """Lease sweeps over a 64-node membership table.

    The coordinator ticks at ``lease_s / 2``; a tick walks every node
    comparing idle time against lease and grace.  The steady state
    (everyone renewing, no transitions) is the case that runs forever,
    so that is what the gate times.
    """
    from ..cluster.membership import Membership

    clock = [1000.0]
    membership = Membership(lease_s=3.0, grace_s=6.0,
                            clock=lambda: clock[0])
    nodes = [membership.join(f"http://10.0.0.{i}:8077") for i in range(64)]
    ticks = 1000

    def once() -> None:
        for _ in range(ticks):
            membership.tick()

    # Keep every lease fresh: transitions allocate, steady state must
    # not.  The injected clock never crosses lease_s between renewals.
    for node in nodes:
        membership.renew(node.node_id, node.generation)
    once()
    seconds = _best(once, repeats)
    return {
        "seconds": seconds,
        "ticks": ticks,
        "nodes": len(nodes),
        "per_tick_s": seconds / ticks,
    }


_BENCHES = {
    "sim_microbench": _bench_sim_microbench,
    "warm_cache_sweep": _bench_warm_cache_sweep,
    "service_p99": _bench_service_p99,
    "slab_microbench": _bench_slab_microbench,
    "pool_transport": _bench_pool_transport,
    "telemetry_overhead": _bench_telemetry_overhead,
    "stream_write": _bench_stream_write,
    "checkpoint_overhead": _bench_checkpoint_overhead,
    "ring_lookup": _bench_ring_lookup,
    "membership_tick": _bench_membership_tick,
}


def run_perf_suite(
    machine: Optional[Machine] = None, repeats: int = 3
) -> BenchReport:
    """Run every benchmark; returns best-of-*repeats* timings."""
    machine = machine or Machine(config=DEFAULT_CONFIG.with_cap(_BENCH_CAP))
    benchmarks = {}
    for name, bench in sorted(_BENCHES.items()):
        result = bench(machine, repeats)
        entry = result if isinstance(result, dict) else {"seconds": result}
        entry["repeats"] = repeats
        benchmarks[name] = entry
    return BenchReport(
        benchmarks=benchmarks,
        meta={
            "functional_cap": machine.config.functional_elements_cap,
            "python": platform.python_version(),
            "statistic": "best",
        },
    )


def compare_benchmarks(
    current: BenchReport,
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Regressions of *current* against a loaded baseline document.

    Returns one record per benchmark that is more than ``threshold``
    times slower than its baseline.  Benchmarks missing from either side
    are skipped (a new benchmark has no baseline yet; a retired one has
    no current number).
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    base = baseline.get("benchmarks", {})
    regressions = []
    for name, entry in sorted(current.benchmarks.items()):
        ref = base.get(name)
        if not ref or not ref.get("seconds"):
            continue
        ratio = entry["seconds"] / ref["seconds"]
        if ratio > threshold:
            regressions.append(
                {
                    "benchmark": name,
                    "current_s": entry["seconds"],
                    "baseline_s": ref["seconds"],
                    "ratio": ratio,
                    "threshold": threshold,
                }
            )
    return regressions
