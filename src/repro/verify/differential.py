"""The differential runner: fuzz cases in, divergence records out.

Every :class:`~repro.verify.fuzzer.FuzzCase` is executed through each
independent path that should agree, and any disagreement beyond the
dtype-aware :class:`~repro.verify.oracles.OracleTolerances` becomes a
:class:`Divergence`:

``exec``
    device executor vs host executor vs exact serial ground truth, plus
    metamorphic transforms (permutation, split-in-two, scale-by-c), the
    Listing-6 measurement identity ``bandwidth * elapsed == bytes *
    trials * 1e-9``, measurement determinism, and the closed-form
    roofline placement (``achieved <= memory ceiling``, deterministic).
``directive``
    parse twice -> identical Directive; compile through a fresh front
    end and through the process compile cache -> identical directive and
    launch geometry; ``num_teams(n)`` must yield grid ``n`` exactly;
    then the functional device/serial cross-check.
``reject``
    two full compile attempts must fail with the same error class and
    the same diagnostic codes; silent acceptance, a shifting class, or
    (for the paper's Listing-4 increment and the ``!=`` test op) the
    wrong diagnostic code is a conformance divergence.
``sweep-cache``
    the same point batch through an uncached executor, a cold fresh
    persistent cache and the warmed cache must be byte-equal under
    canonical JSON.
``coexec``
    every point of a co-execution p sweep must reproduce the serial
    ground truth of the machine workload and satisfy the Listing-8
    bandwidth identity.
``service``
    the in-process service pipeline (admission -> batcher -> scheduler)
    must return the byte-identical raw record the direct executor path
    computes (presentation-only ``summary`` stripped).
``op-exec``
    an extended identifier (``min``/``max``/``argmax``/``dot`` or the
    fused ``sum+max`` pair) on its drawn machine profile: device vs host
    vs exact serial oracles, op-specific metamorphic transforms
    (min/max permutation invariance, argmax tie-break determinism, dot
    scale-linearity), measurement determinism, the two-operand-aware
    bandwidth identity, and the slab-vs-scalar byte-identity oracle.
``op-reject``
    extended-op misuse must fail with a pinned error class and stable
    diagnostic code (``OMP-RED-101``/``OMP-RED-201``/``NVHPC-OMP-201``)
    on every attempt.
``jobs-resume``
    a streaming job (:mod:`repro.jobs`) paused at a checkpoint boundary
    and resumed in a fresh executor must leave a sealed manifest and
    result shards **byte-identical** to an uninterrupted run's (one
    deterministic scenario per run, not a generated case — see
    :func:`check_job_resume`).

The runner probes the :mod:`repro.faults` point ``verify.oracle`` once
per ``exec`` case; when a plan fires it the device value is corrupted
before comparison, so ``repro --faults 'verify.oracle:corrupt' verify
fuzz`` deterministically exercises the divergence (exit 1) path without
any test-only backdoor.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.cache import cached_compile
from ..compiler.diagnostics import (
    NON_CANONICAL_LOOP,
    OPERAND_ARITY,
    UNSUPPORTED_INCREMENT,
)
from ..compiler.nvhpc import NvhpcCompiler, ReductionLoopProgram
from ..core.cases import Case
from ..core.coexec import AllocationSite, measure_coexec_sweep
from ..core.machine import Machine
from ..core.optimized import KernelConfig, optimized_program
from ..core.baseline import baseline_program
from ..core.timing import measure_gpu_reduction
from ..core.workloads import generate_workload
from ..errors import ReproError
from ..evaluation.roofline import roofline_point
from ..faults.injector import fire
from ..gpu.exec_model import execute_reduction
from ..cpu.exec_model import execute_host_reduction
from ..openmp.canonical import ForLoop, listing4_loop, listing5_loop
from ..openmp.clauses import NumTeams, Reduction, ThreadLimit
from ..openmp.directives import FUSED_DUPLICATE_VAR
from ..openmp.parser import parse_pragma
from ..openmp.reduction_ops import ARGMAX_RESULT_TYPE, required_arrays
from ..sweep.executor import SweepExecutor
from ..sweep.fingerprint import canonical_json
from ..sweep.result_cache import open_result_cache
from ..util.units import gb_per_s
from .fuzzer import FuzzCase, case_list_digest, generate_cases
from .oracles import OracleTolerances, serial_ground_truth, tolerances_for

__all__ = [
    "DifferentialRunner",
    "Divergence",
    "FuzzReport",
    "check_job_resume",
    "run_fuzz",
]

#: Fault-injection point probed once per ``exec`` case (see module doc).
ORACLE_FAULT_POINT = "verify.oracle"

#: Coarse p grid for fuzzed co-execution sweeps (the full Listing-8 grid
#: is exercised by the golden corpus; fuzzing needs breadth, not depth).
_COEXEC_P_GRID = (0.0, 0.5, 1.0)

#: Relative slack for identities that are algebraically exact but pass
#: through float division (bandwidth = bytes / elapsed).
_IDENTITY_RTOL = 1e-9


@dataclass(frozen=True)
class Divergence:
    """One disagreement between paths that must agree."""

    case_id: str
    index: int
    kind: str
    check: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case_id": self.case_id,
            "index": self.index,
            "kind": self.kind,
            "check": self.check,
            "detail": self.detail,
        }

    def describe(self) -> str:
        return f"case #{self.index} [{self.kind}] {self.check}: {self.detail}"


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (JSON-serializable via :meth:`to_dict`)."""

    seed: int
    requested: int
    kinds: Optional[Tuple[str, ...]]
    digest: str
    cases_run: int
    checks: int
    duration_s: float
    by_kind: Dict[str, int]
    divergences: List[Divergence]
    exhausted: bool  # False when the time budget cut the run short

    @property
    def ok(self) -> bool:
        return not self.divergences and self.cases_run > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "requested": self.requested,
            "kinds": list(self.kinds) if self.kinds else None,
            "case_list_sha256": self.digest,
            "cases_run": self.cases_run,
            "checks": self.checks,
            "duration_s": self.duration_s,
            "by_kind": dict(sorted(self.by_kind.items())),
            "exhausted": self.exhausted,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        kinds = " ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"fuzz seed={self.seed}: {self.cases_run}/{self.requested} cases, "
            f"{self.checks} checks in {self.duration_s:.1f}s [{kinds}] "
            f"-> {status}"
        )


def _plain(value: Any) -> Any:
    """Coerce NumPy scalars to JSON-safe Python values (repr for NaN)."""
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        f = float(value)
        return f if np.isfinite(f) else repr(f)
    return value


def _wrap_int(value: int, bits: int) -> int:
    """Two's-complement wrap of an exact integer into *bits* bits."""
    return ((int(value) + (1 << (bits - 1))) % (1 << bits)) - (1 << (bits - 1))


class DifferentialRunner:
    """Feeds fuzz cases through the oracles and records divergences."""

    def __init__(self, machine: Optional[Machine] = None):
        self.machine = machine or Machine()
        # A twin machine with the slab hot path forced off: the scalar
        # point-at-a-time pipeline is the differential oracle the slab
        # records must match byte-for-byte.
        self.scalar_machine = Machine(
            system=self.machine.system,
            calibration=self.machine.calibration,
            config=dc_replace(self.machine.config, slab=False),
            icvs=self.machine.runtime.icvs,
        )
        self.compiler = NvhpcCompiler()
        #: Lazily-built (slab, scalar) machine twins per named profile —
        #: op cases run on the profile they drew, against its own slab /
        #: scalar differential pair.
        self._profile_machines: Dict[str, Tuple[Machine, Machine]] = {}
        #: Total comparisons performed (reported for visibility — a run
        #: with zero divergences but also near-zero checks is a red flag).
        self.checks = 0

    def _machines_for(self, profile: Optional[str]) -> Tuple[Machine, Machine]:
        """The (slab, scalar-oracle) machine pair for *profile*."""
        if profile is None or profile == self.machine.config.machine_profile:
            return self.machine, self.scalar_machine
        pair = self._profile_machines.get(profile)
        if pair is None:
            cfg = dc_replace(self.machine.config, machine_profile=profile)
            slab = Machine(config=cfg)
            scalar = Machine(
                system=slab.system,
                calibration=slab.calibration,
                config=dc_replace(cfg, slab=False),
                icvs=slab.runtime.icvs,
            )
            pair = (slab, scalar)
            self._profile_machines[profile] = pair
        return pair

    # -- plumbing -------------------------------------------------------------
    def _agree(
        self,
        case: FuzzCase,
        check: str,
        a: Any,
        b: Any,
        tol: OracleTolerances,
        out: List[Divergence],
        **extra: Any,
    ) -> None:
        self.checks += 1
        if not tol.agree(a, b):
            out.append(
                Divergence(
                    case_id=case.case_id,
                    index=case.index,
                    kind=case.kind,
                    check=check,
                    detail={
                        "lhs": _plain(a),
                        "rhs": _plain(b),
                        "tolerance": tol.describe(),
                        **{k: _plain(v) for k, v in extra.items()},
                    },
                )
            )

    def _expect(
        self,
        case: FuzzCase,
        check: str,
        condition: bool,
        out: List[Divergence],
        **detail: Any,
    ) -> None:
        self.checks += 1
        if not condition:
            out.append(
                Divergence(
                    case_id=case.case_id,
                    index=case.index,
                    kind=case.kind,
                    check=check,
                    detail={k: _plain(v) for k, v in detail.items()},
                )
            )

    def _case_obj(self, case: FuzzCase) -> Case:
        return Case(
            name=f"fz{case.index}",
            element_type=case.dtype,
            result_type=case.result_dtype,
            elements=case.elements,
        )

    def _config(self, case: FuzzCase) -> Optional[KernelConfig]:
        if case.teams is None:
            return None
        return KernelConfig(teams=case.teams, v=case.v, threads=case.threads)

    def _kernel(self, case: FuzzCase, case_obj: Case):
        config = self._config(case)
        if config is None:
            program = baseline_program(case_obj)
            env = None
        else:
            program = optimized_program(case_obj, config)
            env = config.env()
        return cached_compile(program).launch(self.machine.runtime, env), config

    # -- case dispatch --------------------------------------------------------
    def check_case(self, case: FuzzCase) -> List[Divergence]:
        """Run every applicable oracle for *case*; returns divergences."""
        out: List[Divergence] = []
        handler = {
            "exec": self._check_exec,
            "directive": self._check_directive,
            "reject": self._check_reject,
            "sweep-cache": self._check_sweep_cache,
            "coexec": self._check_coexec,
            "service": self._check_service,
            "op-exec": self._check_op_exec,
            "op-reject": self._check_op_reject,
        }[case.kind]
        handler(case, out)
        return out

    # -- exec: device vs host vs serial + metamorphic + analytic --------------
    def _check_exec(self, case: FuzzCase, out: List[Divergence]) -> None:
        case_obj = self._case_obj(case)
        kernel, config = self._kernel(case, case_obj)
        data = generate_workload(
            case.workload, case.dtype, case.elements, seed=case.data_seed
        )
        tol = tolerances_for(data, case.result_dtype)

        device = execute_reduction(data, kernel)
        decision = fire(ORACLE_FAULT_POINT)
        if decision is not None:
            # A fault plan targeting the oracle corrupts the device value
            # so the divergence path is deterministically reachable.
            if tol.result_type.is_integer:
                device = tol.result_type.numpy.type(
                    _wrap_int(int(device) + 1, tol.result_type.bits)
                )
            else:
                device = tol.result_type.numpy.type(
                    float(device) + tol.absolute_bound * 4.0 + 1.0
                )
        serial = serial_ground_truth(data, case.result_dtype)
        host = execute_host_reduction(
            data, self.machine.cpu, case.result_dtype
        )

        self._expect(
            case, "device-determinism",
            bool(np.array_equal(device, execute_reduction(data, kernel))
                 if decision is None else True),
            out,
        )
        self._agree(case, "device-vs-serial", device, serial, tol, out)
        self._agree(case, "host-vs-serial", host, serial, tol, out)
        self._agree(case, "device-vs-host", device, host, tol, out)

        self._metamorphic(case, case_obj, kernel, data, serial, tol, out)
        self._measurement_identities(case, case_obj, config, kernel, out)

    def _metamorphic(self, case, case_obj, kernel, data, serial, tol, out):
        # Permutation invariance: the sum must not depend on input order
        # (exactly for wrapped integers, within tolerance for floats).
        perm = np.random.default_rng(case.data_seed ^ 0x5EED).permutation(
            data.size
        )
        self._agree(
            case, "metamorphic-permutation",
            execute_reduction(data[perm], kernel), serial, tol, out,
        )

        # Split additivity: serial(first) (+) serial(second) == device(all).
        mid = data.size // 2
        first = serial_ground_truth(data[:mid], case.result_dtype)
        second = serial_ground_truth(data[mid:], case.result_dtype)
        if tol.result_type.is_integer:
            combined: Any = _wrap_int(
                int(first) + int(second), tol.result_type.bits
            )
        else:
            combined = float(first) + float(second)
        self._agree(
            case, "metamorphic-split",
            execute_reduction(data, kernel), combined, tol, out,
        )

        # Scaling: sum(c*x) == c*sum(x).  Exact mod 2**bits only when T
        # and R are the same width (wrapping happens in T before the
        # accumulator sees the values); float comparison is bounded by
        # the *element* type's eps, which dominates when R is wider.
        c = 3
        scaled = data * np.asarray(c, dtype=data.dtype)
        if tol.result_type.is_integer:
            if case.dtype == case.result_dtype:
                expected: Any = _wrap_int(c * int(serial), tol.result_type.bits)
                self._agree(
                    case, "metamorphic-scale",
                    execute_reduction(scaled, kernel), expected, tol, out,
                )
            else:
                self._agree(
                    case, "metamorphic-scale",
                    execute_reduction(scaled, kernel),
                    serial_ground_truth(scaled, case.result_dtype),
                    tol, out,
                )
        else:
            scale_tol = tolerances_for(scaled, case.dtype)
            self._agree(
                case, "metamorphic-scale",
                execute_reduction(scaled, kernel), c * float(serial),
                scale_tol, out,
            )

    def _measurement_identities(self, case, case_obj, config, kernel, out):
        m1 = measure_gpu_reduction(
            self.machine, case_obj, config, trials=case.trials, verify=False
        )
        m2 = measure_gpu_reduction(
            self.machine, case_obj, config, trials=case.trials, verify=False
        )
        self._expect(
            case, "measurement-determinism",
            m1.elapsed_seconds == m2.elapsed_seconds
            and m1.bandwidth_gbs == m2.bandwidth_gbs
            and bool(np.array_equal(m1.value, m2.value)),
            out,
            elapsed=(m1.elapsed_seconds, m2.elapsed_seconds),
            bandwidth=(m1.bandwidth_gbs, m2.bandwidth_gbs),
        )
        # Listing 6 metric identity: bandwidth, elapsed and bytes are
        # three readings of one quantity.
        implied = gb_per_s(
            case_obj.input_bytes * case.trials, m1.elapsed_seconds
        )
        self._expect(
            case, "bandwidth-identity",
            abs(m1.bandwidth_gbs - implied)
            <= _IDENTITY_RTOL * max(abs(implied), 1.0),
            out,
            bandwidth=m1.bandwidth_gbs, implied=implied,
        )
        # The measured value sums the machine workload; the serial oracle
        # must agree on that array too.
        wdata = self.machine.workload(case_obj)
        self._agree(
            case, "measurement-vs-serial",
            m1.value, serial_ground_truth(wdata, case.result_dtype),
            tolerances_for(wdata, case.result_dtype), out,
        )
        # Analytic placement: the model's achieved bandwidth must be
        # deterministic and cannot beat the memory ceiling.
        rp = roofline_point(self.machine.gpu, kernel, self.machine.calibration)
        self._expect(
            case, "roofline-determinism",
            rp == roofline_point(
                self.machine.gpu, kernel, self.machine.calibration
            ),
            out,
        )
        self._expect(
            case, "roofline-ceiling",
            0.0 < rp.achieved_gbs <= 1.01 * rp.memory_ceiling_gbs,
            out,
            achieved=rp.achieved_gbs, memory_ceiling=rp.memory_ceiling_gbs,
            binding=rp.binding,
        )

    # -- directive: parse/compile stability + geometry conformance ------------
    def _check_directive(self, case: FuzzCase, out: List[Divergence]) -> None:
        assert case.pragma is not None
        d1 = parse_pragma(case.pragma)
        d2 = parse_pragma(case.pragma)
        self._expect(
            case, "parse-determinism", d1 == d2, out, pragma=case.pragma
        )

        case_obj = self._case_obj(case)
        loop = listing5_loop(case.elements, case.v)
        program = ReductionLoopProgram(
            pragma=case.pragma,
            loop=loop,
            element_type=case_obj.element_type,
            result_type=case_obj.result_type,
            name=f"fz{case.index}_directive",
        )
        fresh = self.compiler.compile(program)
        cached = cached_compile(program)
        self._expect(
            case, "compile-cache-equivalence",
            fresh.directive == cached.directive
            and fresh.identifier == cached.identifier
            and fresh.loop == cached.loop,
            out, pragma=case.pragma,
        )

        kernel = fresh.launch(self.machine.runtime)
        if case.teams is not None:
            num_teams = d1.first(NumTeams)
            thread_limit = d1.first(ThreadLimit)
            self._expect(
                case, "geometry-conformance",
                num_teams is not None
                and kernel.geometry.grid == num_teams.value.evaluate({})
                and (thread_limit is None
                     or kernel.geometry.block
                     == thread_limit.value.evaluate({})),
                out,
                grid=kernel.geometry.grid,
                block=kernel.geometry.block,
                pragma=case.pragma,
            )
        data = generate_workload(
            "uniform", case.dtype, case.elements, seed=case.data_seed
        )
        self._agree(
            case, "device-vs-serial",
            execute_reduction(data, kernel),
            serial_ground_truth(data, case.result_dtype),
            tolerances_for(data, case.result_dtype), out,
        )

    # -- reject: same refusal, every time --------------------------------------
    def _reject_attempt(self, case: FuzzCase) -> Tuple[str, Tuple[str, ...], str]:
        """One full front-end attempt; returns (error class, codes, message).

        Returns ``("accepted", (), "")`` when nothing was rejected —
        which for a ``reject`` case is itself a divergence.
        """
        case_obj = self._case_obj(case)
        if case.mutation == "listing4-increment":
            loop: ForLoop = listing4_loop(case.elements, case.v)
        elif case.mutation == "noncanonical-test-op":
            loop = ForLoop(
                var="i",
                trip_count=case.elements // case.v,
                step=1,
                increment_form="var++",
                elements_per_iteration=case.v,
                test_op="!=",
            )
        else:
            loop = listing5_loop(case.elements, case.v)
        try:
            program = ReductionLoopProgram(
                pragma=case.pragma,
                loop=loop,
                element_type=case_obj.element_type,
                result_type=case_obj.result_type,
                name=f"fz{case.index}_reject",
            )
            NvhpcCompiler().compile(program)
        except ReproError as exc:
            codes = tuple(
                d.code for d in getattr(exc, "diagnostics", ()) or ()
            )
            return type(exc).__name__, codes, str(exc)
        return "accepted", (), ""

    def _check_reject(self, case: FuzzCase, out: List[Divergence]) -> None:
        first = self._reject_attempt(case)
        second = self._reject_attempt(case)
        self._expect(
            case, "reject-refuses",
            first[0] != "accepted",
            out, mutation=case.mutation, pragma=case.pragma,
        )
        self._expect(
            case, "reject-stability",
            first == second,
            out, first=list(first[:2]), second=list(second[:2]),
            mutation=case.mutation,
        )
        expected_code = {
            "listing4-increment": UNSUPPORTED_INCREMENT,
            "noncanonical-test-op": NON_CANONICAL_LOOP,
        }.get(case.mutation or "")
        if expected_code is not None:
            self._expect(
                case, "reject-diagnostic-code",
                expected_code in first[1],
                out, expected=expected_code, got=list(first[1]),
                mutation=case.mutation,
            )

    # -- sweep-cache: uncached == cold cache == warm cache ---------------------
    def _sweep_configs(self, case: FuzzCase) -> List[KernelConfig]:
        points = dict(case.extras).get("point_teams") or [case.teams or 256]
        return [
            KernelConfig(teams=int(t), v=case.v, threads=case.threads)
            for t in points
        ]

    def _check_sweep_cache(self, case: FuzzCase, out: List[Divergence]) -> None:
        case_obj = self._case_obj(case)
        configs = self._sweep_configs(case)
        uncached = SweepExecutor(
            self.machine, workers=1, cache=None
        ).gpu_points(case_obj, configs, trials=case.trials, verify=False)
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            executor = SweepExecutor(
                self.machine, workers=1, cache=open_result_cache(tmp)
            )
            cold = executor.gpu_points(
                case_obj, configs, trials=case.trials, verify=False
            )
            warm = executor.gpu_points(
                case_obj, configs, trials=case.trials, verify=False
            )
        blobs = {
            "uncached": canonical_json(uncached),
            "cold": canonical_json(cold),
            "warm": canonical_json(warm),
        }
        self._expect(
            case, "cache-transparency",
            blobs["uncached"] == blobs["cold"] == blobs["warm"],
            out,
            mismatched=[
                name for name in ("cold", "warm")
                if blobs[name] != blobs["uncached"]
            ],
        )
        # Slab vs scalar oracle: the batch-vectorized hot path must
        # produce byte-identical records to the point-at-a-time scalar
        # pipeline it replaced.
        scalar = SweepExecutor(
            self.scalar_machine, workers=1, cache=None
        ).gpu_points(case_obj, configs, trials=case.trials, verify=False)
        self._expect(
            case, "slab-vs-scalar-oracle",
            canonical_json(scalar) == blobs["uncached"],
            out,
            scalar=scalar,
            slab=uncached,
        )

    # -- coexec: p sweep values + Listing-8 identity ---------------------------
    def _check_coexec(self, case: FuzzCase, out: List[Divergence]) -> None:
        case_obj = self._case_obj(case)
        sweep = measure_coexec_sweep(
            self.machine,
            case_obj,
            AllocationSite(case.site),
            self._config(case),
            p_grid=_COEXEC_P_GRID,
            trials=case.trials,
            verify=False,
            unified_memory=case.unified_memory,
        )
        wdata = self.machine.workload(case_obj)
        tol = tolerances_for(wdata, case.result_dtype)
        truth = serial_ground_truth(wdata, case.result_dtype)
        for m in sweep.measurements:
            self._agree(
                case, "coexec-value-vs-serial", m.value, truth, tol, out,
                cpu_part=m.cpu_part,
            )
            implied = gb_per_s(
                case_obj.input_bytes * case.trials, m.elapsed_seconds
            )
            self._expect(
                case, "coexec-bandwidth-identity",
                abs(m.bandwidth_gbs - implied)
                <= _IDENTITY_RTOL * max(abs(implied), 1.0),
                out, cpu_part=m.cpu_part,
                bandwidth=m.bandwidth_gbs, implied=implied,
            )

    # -- service: pipeline record == direct executor record --------------------
    def _check_service(self, case: FuzzCase, out: List[Divergence]) -> None:
        from ..service.api import SimRequest
        from ..service.scheduler import ReductionService, ServiceSettings

        case_obj = self._case_obj(case)
        config = self._config(case)
        direct = SweepExecutor(self.machine, workers=1, cache=None).run(
            "gpu_point", [(case_obj, config, case.trials, False)],
            stage="verify-direct",
        )[0]

        async def _roundtrip() -> Any:
            service = ReductionService(
                machine=self.machine,
                executor=SweepExecutor(self.machine, workers=1, cache=None),
                settings=ServiceSettings(degrade=False),
            )
            try:
                return await service.submit(
                    SimRequest(
                        experiment="gpu",
                        case=case_obj,
                        config=config,
                        trials=case.trials,
                    )
                )
            finally:
                await service.stop()

        response = asyncio.run(_roundtrip())
        self._expect(
            case, "service-ok",
            response.ok and not response.degraded,
            out, status=response.status, reason=response.reason,
        )
        if response.ok and response.result is not None:
            raw = {
                k: v for k, v in response.result.items() if k != "summary"
            }
            self._expect(
                case, "service-vs-direct",
                canonical_json(raw) == canonical_json(direct),
                out, service=raw, direct=direct,
            )


    # -- op-exec: extended identifiers across machine profiles -----------------

    #: Seed perturbation for dot's second fuzz operand (same constant the
    #: machine workload pair uses, applied to the fuzz data seed).
    _PAIR_SEED_XOR = 0x9E3779B9

    def _op_kernel(self, case: FuzzCase, case_obj: Case, op: str,
                   machine: Machine):
        """Compile+launch the case's program with its clause rewritten to *op*."""
        config = self._config(case)
        if config is None:
            program = baseline_program(case_obj)
            env = None
        else:
            program = optimized_program(case_obj, config)
            env = config.env()
        if op != "+":
            program = dc_replace(
                program,
                pragma=program.pragma.replace(
                    "reduction(+:sum)", f"reduction({op}:sum)"
                ),
                name=f"{program.name}_{op}",
                arrays=required_arrays(op),
            )
        return cached_compile(program).launch(machine.runtime, env), config

    def _check_op_exec(self, case: FuzzCase, out: List[Divergence]) -> None:
        machine, scalar_machine = self._machines_for(case.profile)
        case_obj = self._case_obj(case)
        data = generate_workload(
            case.workload, case.dtype, case.elements, seed=case.data_seed
        )
        if case.op == "sum+max":
            self._fused_directive_checks(case, out)
            sub_ops: Tuple[str, ...] = ("+", "max")
        else:
            sub_ops = (case.op,)
        for op in sub_ops:
            second = None
            if op == "dot":
                second = generate_workload(
                    case.workload, case.dtype, case.elements,
                    seed=case.data_seed ^ self._PAIR_SEED_XOR,
                )
            kernel, config = self._op_kernel(case, case_obj, op, machine)
            tol = tolerances_for(data, case.result_dtype, op, second)
            device = execute_reduction(data, kernel, second)
            serial = serial_ground_truth(data, case.result_dtype, op, second)
            host = execute_host_reduction(
                data, machine.cpu, case.result_dtype, op, second
            )
            tag = f"[{op}]" if case.op == "sum+max" else ""
            self._expect(
                case, f"op-device-determinism{tag}",
                bool(np.array_equal(
                    device, execute_reduction(data, kernel, second)
                )),
                out, op=op,
            )
            self._agree(case, f"op-device-vs-serial{tag}", device, serial,
                        tol, out, op=op)
            self._agree(case, f"op-host-vs-serial{tag}", host, serial,
                        tol, out, op=op)
            self._agree(case, f"op-device-vs-host{tag}", device, host,
                        tol, out, op=op)
            self._op_metamorphic(case, op, kernel, data, second, serial,
                                 tol, out)
            self._op_measurement(case, case_obj, config, op, machine,
                                 scalar_machine, out)

    def _fused_directive_checks(self, case: FuzzCase,
                                out: List[Divergence]) -> None:
        """Parse-level contract for the fused two-clause reduction."""
        pragma = (
            "#pragma omp target teams distribute parallel for "
            "reduction(+:sum) reduction(max:peak)"
        )
        d1 = parse_pragma(pragma)
        self._expect(
            case, "fused-parse-determinism", d1 == parse_pragma(pragma),
            out, pragma=pragma,
        )
        reductions = [c for c in d1.clauses if isinstance(c, Reduction)]
        self._expect(
            case, "fused-clause-count",
            len(reductions) == 2
            and {r.identifier for r in reductions} == {"+", "max"},
            out, pragma=pragma,
            identifiers=sorted(r.identifier for r in reductions),
        )

    def _op_metamorphic(self, case, op, kernel, data, second, serial, tol,
                        out) -> None:
        if op in ("+", "min", "max"):
            # Order invariance: exact for min/max (and wrapped integers),
            # within tolerance for float sums.
            perm = np.random.default_rng(
                case.data_seed ^ 0x5EED
            ).permutation(data.size)
            self._agree(
                case, f"op-metamorphic-permutation[{op}]",
                execute_reduction(data[perm], kernel), serial, tol, out,
                op=op,
            )
        elif op == "argmax":
            # Tie-break determinism: duplicate the maximum at another
            # index; the FIRST (lowest) index must still win, on both
            # the device hierarchy and the serial scan.
            if data.size >= 2:
                i0 = int(serial)
                tied = data.copy()
                if i0 == data.size - 1:
                    j, expected = 0, 0
                else:
                    j, expected = data.size - 1, i0
                tied[j] = data[i0]
                self._agree(
                    case, "op-metamorphic-argmax-tie",
                    execute_reduction(tied, kernel), expected, tol, out,
                    tie_index=j,
                )
                self._agree(
                    case, "op-metamorphic-argmax-tie-serial",
                    serial_ground_truth(tied, case.result_dtype, "argmax"),
                    expected, tol, out, tie_index=j,
                )
        elif op == "dot":
            # Scale-linearity: (c*x)·y == c*(x·y) — exact mod 2**bits
            # semantics fold into the serial oracle for integers, float
            # agreement is bounded by the scaled conditioning.
            c = 3
            scaled = data * np.asarray(c, dtype=data.dtype)
            if tol.result_type.is_integer:
                self._agree(
                    case, "op-metamorphic-dot-scale",
                    execute_reduction(scaled, kernel, second),
                    serial_ground_truth(
                        scaled, case.result_dtype, "dot", second
                    ),
                    tol, out,
                )
            else:
                scale_tol = tolerances_for(
                    scaled, case.result_dtype, "dot", second
                )
                self._agree(
                    case, "op-metamorphic-dot-scale",
                    execute_reduction(scaled, kernel, second),
                    c * float(serial), scale_tol, out,
                )

    def _op_measurement(self, case, case_obj, config, op, machine,
                        scalar_machine, out) -> None:
        tag = f"[{op}]" if case.op == "sum+max" else ""
        m1 = measure_gpu_reduction(
            machine, case_obj, config, trials=case.trials, verify=True,
            op=op,
        )
        m2 = measure_gpu_reduction(
            machine, case_obj, config, trials=case.trials, verify=True,
            op=op,
        )
        self._expect(
            case, f"op-measurement-determinism{tag}",
            m1.elapsed_seconds == m2.elapsed_seconds
            and m1.bandwidth_gbs == m2.bandwidth_gbs
            and bool(np.array_equal(m1.value, m2.value)),
            out, op=op,
            elapsed=(m1.elapsed_seconds, m2.elapsed_seconds),
        )
        # Listing-6 identity, with dot's two-operand traffic counted.
        implied = gb_per_s(
            case_obj.input_bytes * required_arrays(op) * case.trials,
            m1.elapsed_seconds,
        )
        self._expect(
            case, f"op-bandwidth-identity{tag}",
            abs(m1.bandwidth_gbs - implied)
            <= _IDENTITY_RTOL * max(abs(implied), 1.0),
            out, op=op, bandwidth=m1.bandwidth_gbs, implied=implied,
        )
        # The measured value reduces the machine workload (pair); the
        # serial oracle must agree on those arrays too.
        wdata = machine.workload(case_obj)
        wsecond = machine.workload_pair(case_obj) if op == "dot" else None
        self._agree(
            case, f"op-measurement-vs-serial{tag}", m1.value,
            serial_ground_truth(wdata, case.result_dtype, op, wsecond),
            tolerances_for(wdata, case.result_dtype, op, wsecond), out,
            op=op,
        )
        # Slab vs scalar oracle on this profile: the batch-vectorized
        # path must match the point-at-a-time pipeline byte for byte.
        slab_recs = SweepExecutor(
            machine, workers=1, cache=None
        ).gpu_points(case_obj, [config], trials=case.trials, verify=False,
                     op=op)
        scalar_recs = SweepExecutor(
            scalar_machine, workers=1, cache=None
        ).gpu_points(case_obj, [config], trials=case.trials, verify=False,
                     op=op)
        self._expect(
            case, f"op-slab-vs-scalar{tag}",
            canonical_json(slab_recs) == canonical_json(scalar_recs),
            out, op=op, slab=slab_recs, scalar=scalar_recs,
        )

    # -- op-reject: stable diagnostics for extended-op misuse ------------------

    #: Contract table: mutation -> (error class, required diagnostic code).
    OP_REJECT_CONTRACT: Dict[str, Tuple[str, Optional[str]]] = {
        "unknown-op-spelling": ("DirectiveSyntaxError", None),
        "fused-duplicate-var": ("ClauseError", FUSED_DUPLICATE_VAR),
        "dot-missing-pair": ("CompileError", OPERAND_ARITY),
        "argmax-float-result": ("UnsupportedReductionError",
                                ARGMAX_RESULT_TYPE),
        "fused-bad-identifier": ("DirectiveSyntaxError", None),
    }

    def _op_reject_attempt(
        self, case: FuzzCase
    ) -> Tuple[str, Tuple[str, ...], str]:
        """One full front-end attempt on an op-reject case."""
        case_obj = self._case_obj(case)
        try:
            program = ReductionLoopProgram(
                pragma=case.pragma,
                loop=listing5_loop(case.elements, case.v),
                element_type=case_obj.element_type,
                result_type=case_obj.result_type,
                name=f"fz{case.index}_op_reject",
            )
            NvhpcCompiler().compile(program)
        except ReproError as exc:
            codes = tuple(
                d.code for d in getattr(exc, "diagnostics", ()) or ()
            )
            own = getattr(exc, "code", None)
            if own and own not in codes:
                codes = codes + (own,)
            return type(exc).__name__, codes, str(exc)
        return "accepted", (), ""

    def _check_op_reject(self, case: FuzzCase, out: List[Divergence]) -> None:
        first = self._op_reject_attempt(case)
        second = self._op_reject_attempt(case)
        self._expect(
            case, "op-reject-refuses", first[0] != "accepted", out,
            mutation=case.mutation, pragma=case.pragma,
        )
        self._expect(
            case, "op-reject-stability", first == second, out,
            first=list(first[:2]), second=list(second[:2]),
            mutation=case.mutation,
        )
        expected_class, expected_code = self.OP_REJECT_CONTRACT[
            case.mutation or ""
        ]
        self._expect(
            case, "op-reject-error-class", first[0] == expected_class, out,
            expected=expected_class, got=first[0], mutation=case.mutation,
        )
        if expected_code is not None:
            self._expect(
                case, "op-reject-diagnostic-code",
                expected_code in first[1], out,
                expected=expected_code, got=list(first[1]),
                mutation=case.mutation,
            )


#: Synthetic kind name under which the jobs resume oracle reports (it is
#: one deterministic scenario per run, not a generated fuzz-case kind, so
#: the seed-stable case-list digest is untouched by its existence).
JOB_RESUME_KIND = "jobs-resume"


def check_job_resume(
    machine: Optional[Machine] = None,
    interrupt_at: int = 5,
) -> Tuple[List[Divergence], int]:
    """The resume oracle: interrupted-then-resumed == uninterrupted.

    Runs one small multi-shard job twice — straight through, and paused
    at a checkpoint boundary then resumed in a fresh executor — and
    requires the sealed manifest and every result shard to be
    **byte-identical** between the two directories.  Returns
    ``(divergences, checks performed)``.
    """
    from pathlib import Path

    from ..jobs.api import JobSpec
    from ..jobs.manager import run_job
    from ..jobs.store import SHARD_DIR

    machine = machine or Machine()
    # Small enough for CI, shaped to cross both a checkpoint interval
    # and a shard rotation before the interruption point.
    spec = JobSpec(
        case="C1",
        teams=(64, 128, 256),
        v=(2, 4),
        threads=(32, 64),
        trials=5,
        checkpoint_interval=4,
        shard_records=5,
    )
    out: List[Divergence] = []
    checks = 0

    def expect(check: str, condition: bool, **detail: Any) -> None:
        nonlocal checks
        checks += 1
        if not condition:
            out.append(
                Divergence(
                    case_id="job-resume",
                    index=-1,
                    kind=JOB_RESUME_KIND,
                    check=check,
                    detail=detail,
                )
            )

    def run(directory: Path, **kwargs: Any) -> Dict[str, Any]:
        # A fresh single-worker executor per phase mimics the separate
        # processes of a real kill-and-restart.
        executor = SweepExecutor(machine, workers=1, cache=None)
        try:
            return run_job(directory, spec, executor, **kwargs)
        finally:
            executor.close()

    with tempfile.TemporaryDirectory(prefix="repro-verify-jobs-") as tmp:
        single = Path(tmp) / "single"
        resumed = Path(tmp) / "resumed"
        truth = run(single)
        expect("single-shot-completes", truth.get("state") == "DONE",
               state=truth.get("state"), error=truth.get("error"))

        paused = run(resumed, max_points=interrupt_at)
        expect(
            "interrupt-pauses-mid-run",
            paused.get("state") == "CHECKPOINTED"
            and 0 < int(paused.get("points_done", 0)) < spec.total_points(),
            state=paused.get("state"),
            points_done=paused.get("points_done"),
        )
        final = run(resumed)
        expect("resume-completes", final.get("state") == "DONE",
               state=final.get("state"), error=final.get("error"))

        names_a = sorted(
            p.name for p in (single / SHARD_DIR).glob("shard-*.jsonl")
        )
        names_b = sorted(
            p.name for p in (resumed / SHARD_DIR).glob("shard-*.jsonl")
        )
        expect("same-shard-layout", names_a == names_b,
               single=names_a, resumed=names_b)
        for rel in ["manifest.json"] + [
            f"{SHARD_DIR}/{name}" for name in names_a
        ]:
            blob_a = (single / rel).read_bytes()
            blob_b = (resumed / rel).read_bytes()
            expect(f"byte-identical:{rel}", blob_a == blob_b,
                   bytes_single=len(blob_a), bytes_resumed=len(blob_b))
    return out, checks


def run_fuzz(
    seed: int,
    count: int,
    kinds: Optional[Sequence[str]] = None,
    machine: Optional[Machine] = None,
    time_budget_s: Optional[float] = None,
    runner: Optional[DifferentialRunner] = None,
) -> FuzzReport:
    """Generate *count* cases for *seed* and differential-check each one.

    ``time_budget_s`` stops the run early (after the current case) once
    the wall-clock budget is spent — the CI smoke job uses this to pin
    its cost; the report's ``exhausted`` flag records whether the whole
    case list was covered.

    The ``jobs-resume`` oracle (:func:`check_job_resume`) runs once on
    top of the generated case list — in the default all-kinds run, or
    when requested by name in *kinds*.
    """
    want_jobs = kinds is None or JOB_RESUME_KIND in kinds
    gen_kinds = kinds
    if kinds is not None and JOB_RESUME_KIND in kinds:
        gen_kinds = tuple(k for k in kinds if k != JOB_RESUME_KIND)
    if gen_kinds is not None and not gen_kinds:
        cases = []  # only the jobs oracle was requested
    else:
        cases = generate_cases(seed, count, kinds=gen_kinds)
    digest = case_list_digest(cases)
    runner = runner or DifferentialRunner(machine)
    divergences: List[Divergence] = []
    by_kind: Dict[str, int] = {}
    started = time.monotonic()
    cases_run = 0
    exhausted = True
    for case in cases:
        if time_budget_s is not None and (
            time.monotonic() - started >= time_budget_s
        ):
            exhausted = False
            break
        divergences.extend(runner.check_case(case))
        by_kind[case.kind] = by_kind.get(case.kind, 0) + 1
        cases_run += 1
    if want_jobs and (
        time_budget_s is None
        or time.monotonic() - started < time_budget_s
    ):
        job_divergences, job_checks = check_job_resume(runner.machine)
        divergences.extend(job_divergences)
        runner.checks += job_checks
        by_kind[JOB_RESUME_KIND] = by_kind.get(JOB_RESUME_KIND, 0) + 1
        cases_run += 1
    elif want_jobs:
        exhausted = False
    return FuzzReport(
        seed=seed,
        requested=count,
        kinds=tuple(kinds) if kinds is not None else None,
        digest=digest,
        cases_run=cases_run,
        checks=runner.checks,
        duration_s=time.monotonic() - started,
        by_kind=by_kind,
        divergences=divergences,
        exhausted=exhausted,
    )
