"""Independent computation paths and tolerances for differential checks.

Each oracle computes "the answer" for a reduction case along a path that
shares as little code as possible with the others:

* **device** — the functional GPU executor with the case's real launch
  geometry (:func:`repro.gpu.exec_model.execute_reduction`);
* **host** — the CPU parallel-for lowering
  (:func:`repro.cpu.exec_model.execute_host_reduction`);
* **serial** — :func:`serial_ground_truth`: exact modular arithmetic for
  integers (Python big ints, wrapped once at the end), float64
  compensated summation for floats — no NumPy reduction tree involved;
* **compensated references** — :func:`kahan_sum` / :func:`pairwise_sum`
  / :func:`naive_sum`, used both as oracle inputs and by the property
  suite to check the textbook error ordering.

Tolerances are dtype-aware (:class:`OracleTolerances`): integer paths
must agree *exactly* (modular addition is associative, so any grouping
of wrapped partial sums equals the wrapped exact sum), while floating
paths get the condition-aware worst-case bound for reordered summation,

    |S_a - S_b| <= 2 * n * eps_R * sum(|x_i|),

which stays sound even for the fuzzer's ``ill_conditioned`` and
``extremes`` workloads where the paper's own ``|sum|``-scaled rule
(:func:`repro.core.verify.float_tolerance`, built for well-conditioned
benchmarking inputs) would flag legitimate rounding as divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..dtypes import ScalarType, scalar_type

__all__ = [
    "GROUPING_EXACT_IDENTIFIERS",
    "OracleTolerances",
    "kahan_sum",
    "naive_sum",
    "pairwise_sum",
    "serial_ground_truth",
    "tolerances_for",
]


def naive_sum(data, dtype=np.float64) -> float:
    """Left-to-right recursive summation in *dtype* (worst-case error)."""
    t = np.dtype(dtype).type
    acc = t(0)
    for x in data:
        acc = t(acc + t(x))
    return float(acc)


def kahan_sum(data, dtype=np.float64) -> float:
    """Kahan compensated summation in *dtype* (error ~ 2*eps, size-free)."""
    t = np.dtype(dtype).type
    acc = t(0)
    comp = t(0)
    for x in data:
        y = t(t(x) - comp)
        total = t(acc + y)
        comp = t(t(total - acc) - y)
        acc = total
    return float(acc)


def pairwise_sum(data, dtype=np.float64) -> float:
    """Recursive pairwise summation in *dtype* (error ~ eps * log2 n)."""
    t = np.dtype(dtype).type

    def rec(lo: int, hi: int):
        if hi == lo:
            return t(0)
        if hi - lo == 1:
            return t(data[lo])
        mid = (lo + hi) // 2
        return t(rec(lo, mid) + rec(mid, hi))

    return float(rec(0, len(data)))


def _wrap(value: int, bits: int) -> int:
    """Two's-complement wrap of an exact Python int into *bits* bits."""
    return ((int(value) + (1 << (bits - 1))) % (1 << bits)) - (1 << (bits - 1))


def serial_ground_truth(data: np.ndarray, result_type, identifier: str = "+",
                        second=None):
    """The independent serial reference, in the accumulator type R.

    ``+`` — integers: the exact sum in Python arbitrary precision,
    wrapped once into R's two's complement (by associativity this equals
    *any* grouping of wrapped partial sums, so every correct executor
    must match it bit for bit); floats: float64 Kahan summation (error
    far below any float32/float64 grouping tolerance).

    ``min`` / ``max`` — a pure-Python comparison scan (no NumPy ufunc
    involved); grouping-exact for every dtype, so executors must match
    bit for bit.

    ``argmax`` — a pure-Python first-index-of-maximum scan (lowest index
    wins on ties), the OpenMP user-defined-reduction tie-break contract.

    ``dot`` — integers: the exact big-int sum of exact products, wrapped
    once (modular arithmetic makes per-product wrapping in R equivalent);
    floats: Kahan summation over exactly-computed float64 products.
    """
    rtype = scalar_type(result_type)
    if identifier == "argmax":
        if data.size == 0:
            return rtype.numpy.type(-1)
        lst = data.tolist()
        best_i = 0
        best = lst[0]
        for i, x in enumerate(lst):
            if x > best:
                best, best_i = x, i
        return rtype.numpy.type(best_i)
    if identifier in ("min", "max"):
        if data.size == 0:
            if rtype.is_integer:
                info = np.iinfo(rtype.numpy)
                return rtype.numpy.type(
                    info.max if identifier == "min" else info.min
                )
            return rtype.numpy.type(
                np.inf if identifier == "min" else -np.inf
            )
        best = data.tolist()[0]
        for x in data.tolist()[1:]:
            if (x < best) if identifier == "min" else (x > best):
                best = x
        return rtype.numpy.type(best)
    if identifier == "dot":
        if second is None:
            raise ValueError("dot ground truth requires the second operand")
        if rtype.is_integer:
            exact = sum(
                int(x) * int(y)
                for x, y in zip(data.tolist(), second.tolist())
            )
            return rtype.numpy.type(_wrap(exact, rtype.bits))
        if data.size == 0:
            return rtype.numpy.type(0)
        products = (data.astype(np.float64, copy=False)
                    * second.astype(np.float64, copy=False))
        return rtype.numpy.type(kahan_sum(products, np.float64))
    if rtype.is_integer:
        exact = int(sum(int(x) for x in data.tolist())) if data.size else 0
        return rtype.numpy.type(_wrap(exact, rtype.bits))
    if data.size == 0:
        return rtype.numpy.type(0)
    return rtype.numpy.type(
        kahan_sum(data.astype(np.float64, copy=False), np.float64)
    )


@dataclass(frozen=True)
class OracleTolerances:
    """Dtype- and identifier-aware agreement rules for one case.

    ``abs_sum`` is the conditioning scale of the input in float64 —
    ``sum(|x_i|)`` for single-array reductions, ``sum(|x_i * y_i|)`` for
    ``dot``.  Integer cases ignore it (agreement is exact), as do
    grouping-exact identifiers (``min``/``max``/``argmax``: comparisons
    do not round, so every grouping of a float reduction returns the
    same bits — ``exact`` is set and paths must match exactly).
    """

    result_type: ScalarType
    n_elements: int
    abs_sum: float = 0.0
    exact: bool = False

    @property
    def absolute_bound(self) -> float:
        """Largest legitimate difference between two float groupings."""
        if self.result_type.is_integer or self.exact:
            return 0.0
        eps = float(np.finfo(self.result_type.numpy).eps)
        n = max(self.n_elements, 1)
        return 2.0 * n * eps * max(self.abs_sum, 1.0)

    def agree(self, a, b) -> bool:
        """Whether two path results are equal under this case's rules."""
        if self.result_type.is_integer:
            return int(a) == int(b)
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        if self.exact or math.isinf(fa) or math.isinf(fb):
            return fa == fb
        return abs(fa - fb) <= self.absolute_bound

    def describe(self) -> str:
        if self.result_type.is_integer:
            return f"{self.result_type.name}: exact"
        if self.exact:
            return f"{self.result_type.name}: exact (grouping-insensitive)"
        return (
            f"{self.result_type.name}: |a-b| <= {self.absolute_bound:.3g} "
            f"(n={self.n_elements}, sum|x|={self.abs_sum:.3g})"
        )


#: Identifiers whose float result is independent of grouping (comparison
#: selections never round), so cross-path agreement must be exact.
GROUPING_EXACT_IDENTIFIERS = ("min", "max", "argmax")


def tolerances_for(data: np.ndarray, result_type, identifier: str = "+",
                   second=None) -> OracleTolerances:
    """Build the tolerance rule for a concrete input (pair) and identifier."""
    rtype = scalar_type(result_type)
    exact = identifier in GROUPING_EXACT_IDENTIFIERS
    abs_sum = 0.0
    if not rtype.is_integer and not exact and data.size:
        if identifier == "dot":
            if second is None:
                raise ValueError(
                    "dot tolerances require the second operand"
                )
            abs_sum = float(
                np.abs(
                    data.astype(np.float64, copy=False)
                    * second.astype(np.float64, copy=False)
                ).sum()
            )
        else:
            abs_sum = float(
                np.abs(data.astype(np.float64, copy=False)).sum()
            )
    return OracleTolerances(
        result_type=rtype, n_elements=int(data.size), abs_sum=abs_sum,
        exact=exact,
    )
