"""Differential conformance and regression verification (``repro verify``).

The paper's artifact is a matrix of directive variants whose correctness
depends on the compiler front end, the runtime grid heuristics and the
memory model all agreeing.  This package systematically cross-checks the
simulator's *independent* execution paths against each other:

* :mod:`repro.verify.fuzzer` — a seeded generator of valid and
  deliberately-invalid directive/config cases over the paper's parameter
  space.  Every case is a pure function of ``(seed, index)``, so a seed
  reproduces the exact case list byte for byte.
* :mod:`repro.verify.oracles` — the independent computation paths a case
  is run through (device executor, host executor, NumPy serial ground
  truth, high-precision compensated/pairwise references, analytic
  bandwidth identities) plus the dtype-aware tolerances that decide when
  a difference is legitimate rounding and when it is a divergence.
* :mod:`repro.verify.differential` — the runner that feeds fuzz cases to
  the oracles, applies the metamorphic checks (permutation, splitting,
  scaling) and the compile-reject conformance check, and collects
  :class:`~repro.verify.differential.Divergence` records.
* :mod:`repro.verify.corpus` — the golden corpus under ``tests/golden/``
  pinning byte-exact outputs for the paper's Table 1 / Figures 1-5
  configurations, with a ``repro verify bless`` regeneration flow.
* :mod:`repro.verify.perfgate` — the perf-regression gate timing the
  tier-1-critical hot paths into ``BENCH_verify.json`` and comparing
  them against a committed baseline with a noise-aware threshold.

See docs/VERIFICATION.md for the operational guide.
"""

from .corpus import GoldenCorpus, default_golden_dir
from .differential import (
    DifferentialRunner,
    Divergence,
    FuzzReport,
    run_fuzz,
)
from .fuzzer import (
    CASE_KINDS,
    FuzzCase,
    case_digest,
    case_list_digest,
    generate_cases,
)
from .oracles import (
    OracleTolerances,
    kahan_sum,
    naive_sum,
    pairwise_sum,
    serial_ground_truth,
)
from .perfgate import (
    BenchReport,
    compare_benchmarks,
    default_baseline_path,
    run_perf_suite,
)

__all__ = [
    "BenchReport",
    "CASE_KINDS",
    "DifferentialRunner",
    "Divergence",
    "FuzzCase",
    "FuzzReport",
    "GoldenCorpus",
    "OracleTolerances",
    "case_digest",
    "case_list_digest",
    "compare_benchmarks",
    "default_baseline_path",
    "default_golden_dir",
    "generate_cases",
    "kahan_sum",
    "naive_sum",
    "pairwise_sum",
    "run_fuzz",
    "run_perf_suite",
    "serial_ground_truth",
]
