"""Canonical loop form modelling.

OpenMP worksharing-loop constructs require the associated loop to have
*canonical loop form* (OpenMP 5.1 §4.4.1): ``var`` initialized to an
invariant expression, tested against an invariant bound with a relational
operator, and incremented by a loop-invariant step.

The paper additionally reports an NVHPC-specific behaviour (§III.A): the
vendor compiler "may fail to build the program because the loop increment
is not in a supported form" for Listing 4's ``for (i = 0; i < M; i = i + V)``
with a manually unrolled body, which is why Listing 5 normalizes the loop to
a unit step (``for (m = 0; m < M/V; m++)`` with ``i = V*m`` in the body).
:func:`nvhpc_supported` encodes that restriction; :func:`check_canonical`
implements the standard's broader rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CanonicalLoopError
from ..util.validation import check_positive_int

__all__ = ["ForLoop", "check_canonical", "nvhpc_supported", "listing4_loop", "listing5_loop"]

_RELATIONAL_OPS = ("<", "<=", ">", ">=", "!=")

#: Increment forms we distinguish, mirroring C source spellings.
_INCREMENT_FORMS = (
    "var++",          # unit step, postfix increment (Listing 5)
    "++var",          # unit step, prefix increment
    "var += step",    # compound assignment
    "var = var + step",  # full reassignment (Listing 4 when step > 1)
    "var--",
    "var -= step",
)


@dataclass(frozen=True)
class ForLoop:
    """A C ``for`` loop abstracted to the attributes OpenMP cares about.

    Parameters
    ----------
    var:
        Loop variable name.
    trip_count:
        Number of iterations the loop performs (already normalized; e.g.
        Listing 5 iterates ``M / V`` times).
    step:
        Magnitude of the increment per iteration of the *source* loop
        (Listing 4 uses ``V``; Listing 5 uses 1).
    increment_form:
        One of the source spellings in ``_INCREMENT_FORMS``.
    elements_per_iteration:
        How many input elements the body consumes per iteration (the
        paper's ``V``; 1 for the baseline Listing 2).
    test_op:
        Relational operator of the loop test.
    """

    var: str
    trip_count: int
    step: int = 1
    increment_form: str = "var++"
    elements_per_iteration: int = 1
    test_op: str = "<"

    def __post_init__(self) -> None:
        check_positive_int(self.trip_count, "trip_count")
        check_positive_int(self.step, "step")
        check_positive_int(self.elements_per_iteration, "elements_per_iteration")
        if self.increment_form not in _INCREMENT_FORMS:
            raise CanonicalLoopError(
                f"unrecognized increment form {self.increment_form!r}; "
                f"expected one of {_INCREMENT_FORMS}"
            )
        if self.test_op not in _RELATIONAL_OPS:
            raise CanonicalLoopError(
                f"loop test must use a relational operator, got {self.test_op!r}"
            )
        if self.increment_form in ("var++", "++var", "var--") and self.step != 1:
            raise CanonicalLoopError(
                f"increment form {self.increment_form!r} implies step 1, "
                f"got step={self.step}"
            )

    @property
    def total_elements(self) -> int:
        """Input elements consumed across the whole loop."""
        return self.trip_count * self.elements_per_iteration

    def normalized(self) -> "ForLoop":
        """The unit-step rewrite of this loop (the Listing 4 → 5 transform).

        The trip count is preserved; the step folds into the body as an
        index multiplication (``i = V * m``), which is exactly how the
        paper rewrites the unsupported form.
        """
        if self.step == 1 and self.increment_form in ("var++", "++var"):
            return self
        return ForLoop(
            var=self.var,
            trip_count=self.trip_count,
            step=1,
            increment_form="var++",
            elements_per_iteration=self.elements_per_iteration,
            test_op=self.test_op,
        )


def check_canonical(loop: ForLoop) -> None:
    """Validate OpenMP canonical loop form; raise on violation.

    All :class:`ForLoop` instances that construct successfully satisfy the
    standard's canonical form (invariant bounds/step are implied by the
    abstraction), so this only rejects the ``!=`` test, which the standard
    excludes for worksharing loops.
    """
    if loop.test_op == "!=":
        raise CanonicalLoopError(
            "canonical loop form requires <, <=, > or >= in the loop test"
        )


def nvhpc_supported(loop: ForLoop) -> bool:
    """Whether the simulated NVHPC front end accepts the loop's increment.

    Returns ``False`` for non-unit-step reassignment forms such as
    Listing 4's ``i = i + V`` (V > 1) — the behaviour the paper reports —
    and ``True`` for unit-step loops like Listing 5.
    """
    if loop.step == 1:
        return True
    return loop.increment_form == "var += step"


def listing4_loop(m: int, v: int, var: str = "i") -> ForLoop:
    """The paper's Listing 4 loop: ``for (i = 0; i < M; i = i + V)``."""
    check_positive_int(m, "m")
    check_positive_int(v, "v")
    if m % v:
        raise CanonicalLoopError(f"M={m} must be divisible by V={v}")
    return ForLoop(
        var=var,
        trip_count=m // v,
        step=v,
        increment_form="var = var + step",
        elements_per_iteration=v,
    )


def listing5_loop(m: int, v: int, var: str = "m") -> ForLoop:
    """The paper's Listing 5 rewrite: ``for (m = 0; m < M/V; m++)``."""
    check_positive_int(m, "m")
    check_positive_int(v, "v")
    if m % v:
        raise CanonicalLoopError(f"M={m} must be divisible by V={v}")
    return ForLoop(
        var=var,
        trip_count=m // v,
        step=1,
        increment_form="var++",
        elements_per_iteration=v,
    )
