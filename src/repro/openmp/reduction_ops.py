"""Reduction-identifier registry (OpenMP 5.1 §5.5.5 implicit identifiers).

Every identifier couples the C operator spelling with its identity value
and a NumPy combiner.  The paper only exercises ``+``, but the runtime
implements the full implicit set so the library is usable as a general
offload-reduction layer.

Beyond the implicit set, two *extended* reduction identifiers are
registered for the scenario-diversity study (ROADMAP item 4):

* ``argmax`` — index of the first occurrence of the global maximum
  (lowest index wins on ties; the empty reduction yields ``-1``).  The
  result is an element *index*, so the accumulator is pinned to
  ``int64``.
* ``dot`` — two-array inner product ``sum += (R) x[i] * (R) y[i]``:
  products are widened to the result type first, then accumulated with
  the ordinary ``+`` hierarchy, so its grouping semantics are exactly
  the sum reduction's over the product array.

Extended identifiers are not :class:`ReductionOp` instances — argmax
carries index state through the combine and dot consumes two arrays —
so they live in :data:`EXTENDED_REDUCTIONS` and executors special-case
them.  :func:`validate_reduction` is the unified front-end check that
accepts both families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..dtypes import ScalarType, scalar_type
from ..errors import UnsupportedReductionError

__all__ = [
    "ReductionOp",
    "REDUCTION_OPS",
    "get_reduction_op",
    "ExtendedReduction",
    "EXTENDED_REDUCTIONS",
    "ALL_REDUCTION_IDENTIFIERS",
    "validate_reduction",
    "required_arrays",
    "ARGMAX_RESULT_TYPE",
]

#: Stable diagnostic code: ``argmax`` with a non-``int64`` accumulator.
ARGMAX_RESULT_TYPE = "OMP-RED-101"


@dataclass(frozen=True)
class ReductionOp:
    """One reduction-identifier.

    Parameters
    ----------
    identifier:
        Source spelling (``"+"``, ``"max"``, ...).
    identity_for:
        Callable mapping a result :class:`~repro.dtypes.ScalarType` to the
        initializer value for private copies.
    reduce_array:
        Vectorized whole-array reduction (used by the functional
        executors) — must accept ``(array, dtype)`` and return a scalar of
        ``dtype``.
    combine:
        Binary combiner applied to two partial results.
    integer_only:
        Bitwise/logical identifiers are restricted to integer types.
    commutative:
        All implicit OpenMP identifiers are associative; subtraction is
        special-cased per the 5.1 spec (combines with ``+``).
    """

    identifier: str
    identity_for: Callable[[ScalarType], object]
    reduce_array: Callable[[np.ndarray, np.dtype], object]
    combine: Callable[[object, object], object]
    integer_only: bool = False
    commutative: bool = True


def _sum_reduce(array: np.ndarray, dtype: np.dtype):
    return array.sum(dtype=dtype)


def _prod_reduce(array: np.ndarray, dtype: np.dtype):
    return np.multiply.reduce(array.astype(dtype, copy=False))


def _max_reduce(array: np.ndarray, dtype: np.dtype):
    return dtype.type(array.max()) if array.size else _max_identity(scalar_type(dtype))


def _min_reduce(array: np.ndarray, dtype: np.dtype):
    return dtype.type(array.min()) if array.size else _min_identity(scalar_type(dtype))


def _max_identity(st: ScalarType):
    if st.is_integer:
        return np.iinfo(st.numpy).min
    return st.numpy.type(-np.inf)


def _min_identity(st: ScalarType):
    if st.is_integer:
        return np.iinfo(st.numpy).max
    return st.numpy.type(np.inf)


def _band_reduce(array: np.ndarray, dtype: np.dtype):
    return np.bitwise_and.reduce(array.astype(dtype, copy=False))


def _bor_reduce(array: np.ndarray, dtype: np.dtype):
    return np.bitwise_or.reduce(array.astype(dtype, copy=False))


def _bxor_reduce(array: np.ndarray, dtype: np.dtype):
    return np.bitwise_xor.reduce(array.astype(dtype, copy=False))


def _land_reduce(array: np.ndarray, dtype: np.dtype):
    return dtype.type(bool(np.all(array != 0)))


def _lor_reduce(array: np.ndarray, dtype: np.dtype):
    return dtype.type(bool(np.any(array != 0)))


def _wrapping_add(a, b):
    # NumPy integer scalars wrap modulo 2**bits like the C types on the
    # evaluated hardware; suppress the overflow warning NumPy >= 2 emits.
    with np.errstate(over="ignore"):
        return a + b


REDUCTION_OPS: Dict[str, ReductionOp] = {
    "+": ReductionOp(
        "+",
        identity_for=lambda st: st.zero(),
        reduce_array=_sum_reduce,
        combine=_wrapping_add,
    ),
    "-": ReductionOp(
        # Per OpenMP 5.1 the '-' identifier combines with + (deprecated
        # subtle semantics retained for completeness).
        "-",
        identity_for=lambda st: st.zero(),
        reduce_array=_sum_reduce,
        combine=_wrapping_add,
    ),
    "*": ReductionOp(
        "*",
        identity_for=lambda st: st.numpy.type(1),
        reduce_array=_prod_reduce,
        combine=lambda a, b: a * b,
    ),
    "max": ReductionOp(
        "max",
        identity_for=_max_identity,
        reduce_array=_max_reduce,
        combine=lambda a, b: max(a, b),
    ),
    "min": ReductionOp(
        "min",
        identity_for=_min_identity,
        reduce_array=_min_reduce,
        combine=lambda a, b: min(a, b),
    ),
    "&": ReductionOp(
        "&",
        identity_for=lambda st: st.numpy.type(-1),
        reduce_array=_band_reduce,
        combine=lambda a, b: a & b,
        integer_only=True,
    ),
    "|": ReductionOp(
        "|",
        identity_for=lambda st: st.zero(),
        reduce_array=_bor_reduce,
        combine=lambda a, b: a | b,
        integer_only=True,
    ),
    "^": ReductionOp(
        "^",
        identity_for=lambda st: st.zero(),
        reduce_array=_bxor_reduce,
        combine=lambda a, b: a ^ b,
        integer_only=True,
    ),
    "&&": ReductionOp(
        "&&",
        identity_for=lambda st: st.numpy.type(1),
        reduce_array=_land_reduce,
        combine=lambda a, b: type(a)(bool(a) and bool(b)),
        integer_only=True,
    ),
    "||": ReductionOp(
        "||",
        identity_for=lambda st: st.zero(),
        reduce_array=_lor_reduce,
        combine=lambda a, b: type(a)(bool(a) or bool(b)),
        integer_only=True,
    ),
}


@dataclass(frozen=True)
class ExtendedReduction:
    """A reduction identifier outside the OpenMP implicit set.

    Parameters
    ----------
    identifier:
        Source spelling (``"argmax"``, ``"dot"``).
    arrays:
        Number of input arrays the op consumes per element.
    result_names:
        Allowed result-type names, or ``None`` for any registered type.
    """

    identifier: str
    arrays: int = 1
    result_names: Optional[Tuple[str, ...]] = None


EXTENDED_REDUCTIONS: Dict[str, ExtendedReduction] = {
    "argmax": ExtendedReduction("argmax", arrays=1, result_names=("int64",)),
    "dot": ExtendedReduction("dot", arrays=2),
}


#: Every identifier the front end accepts (implicit set + extended set).
ALL_REDUCTION_IDENTIFIERS = tuple(REDUCTION_OPS) + tuple(EXTENDED_REDUCTIONS)


def required_arrays(identifier: str) -> int:
    """Input arrays *identifier* consumes (1 for every implicit op)."""
    ext = EXTENDED_REDUCTIONS.get(identifier)
    return ext.arrays if ext is not None else 1


def validate_reduction(identifier: str, result_type=None) -> None:
    """Unified identifier/result-type check over both op families.

    Raises
    ------
    UnsupportedReductionError
        For unknown identifiers, integer-only implicit identifiers on
        floating types, or extended identifiers with a disallowed
        accumulator type (stable code :data:`ARGMAX_RESULT_TYPE` for the
        argmax case).
    """
    ext = EXTENDED_REDUCTIONS.get(identifier)
    if ext is None:
        get_reduction_op(identifier, result_type)
        return
    if result_type is not None and ext.result_names is not None:
        st = scalar_type(result_type)
        if st.name not in ext.result_names:
            raise UnsupportedReductionError(
                f"reduction-identifier {identifier!r} requires result type "
                f"{' or '.join(ext.result_names)} (the accumulator is an "
                f"element index), got {st.name}",
                code=ARGMAX_RESULT_TYPE,
            )


def get_reduction_op(identifier: str, result_type=None) -> ReductionOp:
    """Look up a reduction-identifier; optionally validate the result type.

    Raises
    ------
    UnsupportedReductionError
        For unknown identifiers or integer-only identifiers applied to
        floating types.
    """
    try:
        op = REDUCTION_OPS[identifier]
    except KeyError:
        raise UnsupportedReductionError(
            f"unknown reduction-identifier {identifier!r}"
        ) from None
    if result_type is not None and op.integer_only:
        st = scalar_type(result_type)
        if not st.is_integer:
            raise UnsupportedReductionError(
                f"reduction-identifier {identifier!r} requires an integer "
                f"type, got {st.name}"
            )
    return op
