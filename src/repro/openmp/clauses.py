"""Clause model for the supported OpenMP directive subset.

Each clause is a frozen dataclass.  Clause *values* are kept symbolic where
the listings use expressions (e.g. ``num_teams(teams/V)``): the parser
stores the expression text, and :meth:`Clause.resolve`-style evaluation
happens at lowering time against a binding environment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from ..errors import ClauseError

__all__ = [
    "Clause",
    "IntExpr",
    "NumTeams",
    "ThreadLimit",
    "Reduction",
    "MapKind",
    "Map",
    "NoWait",
    "Device",
    "Schedule",
    "Simd",
]


@dataclass(frozen=True)
class IntExpr:
    """An integer-valued clause argument, possibly symbolic.

    Supports the expression forms that appear in the paper's listings:
    integer literals, identifiers, and single binary ``/`` or ``*``
    between two atoms (e.g. ``teams/V``).
    """

    text: str

    def evaluate(self, env: Optional[Mapping[str, int]] = None) -> int:
        """Evaluate against *env*; raises :class:`ClauseError` if unbound."""
        env = env or {}
        value = _eval_int_expr(self.text, env)
        if value <= 0:
            raise ClauseError(
                f"clause argument {self.text!r} evaluated to non-positive {value}"
            )
        return value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def _eval_atom(token: str, env: Mapping[str, int]) -> int:
    token = token.strip()
    if not token:
        raise ClauseError("empty expression atom")
    try:
        return int(token, 0)
    except ValueError:
        pass
    if token in env:
        return int(env[token])
    raise ClauseError(f"unbound identifier {token!r} in clause expression")


def _eval_int_expr(text: str, env: Mapping[str, int]) -> int:
    """Evaluate ``atom``, ``atom/atom`` or ``atom*atom`` (left-assoc chain)."""
    # Tokenize into atoms separated by / and * operators.
    out = None
    op = None
    atom = ""
    for ch in text + "\0":
        if ch in "/*\0":
            value = _eval_atom(atom, env)
            if out is None:
                out = value
            elif op == "/":
                if value == 0:
                    raise ClauseError(f"division by zero in {text!r}")
                out //= value
            else:
                out *= value
            op = ch
            atom = ""
        else:
            atom += ch
    assert out is not None
    return out


@dataclass(frozen=True)
class Clause:
    """Base class for all clauses."""

    #: Clause keyword as written in source (overridden per subclass).
    keyword = "clause"

    def render(self) -> str:
        """Source form of the clause."""
        return self.keyword


@dataclass(frozen=True)
class NumTeams(Clause):
    """``num_teams(expr)`` — upper bound on the number of teams.

    Per OpenMP 5.1 the runtime creates at most this many teams; the NVHPC
    runtime the paper profiles creates exactly this many (grid size matches
    the clause), which is how :class:`~repro.openmp.runtime.DeviceRuntime`
    behaves.
    """

    value: IntExpr
    keyword = "num_teams"

    def render(self) -> str:
        return f"num_teams({self.value})"


@dataclass(frozen=True)
class ThreadLimit(Clause):
    """``thread_limit(expr)`` — cap on threads per contention group."""

    value: IntExpr
    keyword = "thread_limit"

    def render(self) -> str:
        return f"thread_limit({self.value})"


@dataclass(frozen=True)
class Reduction(Clause):
    """``reduction(op: list-items)``.

    ``identifier`` is the reduction-identifier (an operator such as ``+``)
    and ``items`` the reduction list items (variable names).
    """

    identifier: str
    items: Tuple[str, ...]
    keyword = "reduction"

    def __post_init__(self) -> None:
        if not self.items:
            raise ClauseError("reduction clause requires at least one list item")

    def render(self) -> str:
        return f"reduction({self.identifier}:{','.join(self.items)})"


class MapKind(enum.Enum):
    """Map-type of a ``map`` clause."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"
    RELEASE = "release"
    DELETE = "delete"


@dataclass(frozen=True)
class Map(Clause):
    """``map(kind: var[lb:len])`` data-mapping clause.

    In unified-memory mode the map clause performs no allocation or copy;
    the runtime treats it as a placement hint (paper §IV.A), which
    :mod:`repro.memory.unified` models.
    """

    kind: MapKind
    var: str
    section: Optional[Tuple[str, str]] = None  # (lower-bound, length) exprs
    keyword = "map"

    def render(self) -> str:
        sec = f"[{self.section[0]}:{self.section[1]}]" if self.section else ""
        return f"map({self.kind.value}: {self.var}{sec})"


@dataclass(frozen=True)
class NoWait(Clause):
    """``nowait`` — the encountering thread does not wait for the region."""

    keyword = "nowait"


@dataclass(frozen=True)
class Device(Clause):
    """``device(n)`` — target device number."""

    number: int = 0
    keyword = "device"

    def render(self) -> str:
        return f"device({self.number})"


@dataclass(frozen=True)
class Schedule(Clause):
    """``schedule(kind[, chunk])`` for worksharing loops."""

    kind: str = "static"
    chunk: Optional[int] = None
    keyword = "schedule"

    def __post_init__(self) -> None:
        if self.kind not in ("static", "dynamic", "guided", "auto", "runtime"):
            raise ClauseError(f"unknown schedule kind {self.kind!r}")
        if self.chunk is not None and self.chunk <= 0:
            raise ClauseError("schedule chunk must be positive")

    def render(self) -> str:
        if self.chunk is None:
            return f"schedule({self.kind})"
        return f"schedule({self.kind},{self.chunk})"


@dataclass(frozen=True)
class Simd(Clause):
    """Marker recording the ``simd`` directive-name modifier on host loops.

    The NVHPC user guide (paper §IV.A) notes ``simd`` may provide tuning
    hints for CPU targets and is ignored for GPU targets; the host executor
    honours it, the device lowering drops it.
    """

    keyword = "simd"
