"""Directive AST for the supported OpenMP subset.

A :class:`Directive` couples a :class:`DirectiveKind` (possibly a *combined*
construct such as ``target teams distribute parallel for``) with its clause
list, and validates clause applicability the way a conforming front end
must (e.g. ``num_teams`` is only valid where a ``teams`` construct
participates; ``nowait`` requires ``target``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple, Type

from ..errors import ClauseError
from .clauses import (
    Clause,
    Device,
    Map,
    NoWait,
    NumTeams,
    Reduction,
    Schedule,
    Simd,
    ThreadLimit,
)

__all__ = ["DirectiveKind", "Directive", "FUSED_DUPLICATE_VAR"]

#: Stable diagnostic code: one list item named by more than one reduction
#: clause (or twice within a clause) on the same directive.  OpenMP 5.1
#: §5.5.8 forbids a variable from appearing in more than one reduction
#: clause, and a fused multi-reduction directive must keep its
#: accumulators disjoint.
FUSED_DUPLICATE_VAR = "OMP-RED-201"


class DirectiveKind(enum.Enum):
    """The directives (including combined constructs) the library models."""

    TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR = "target teams distribute parallel for"
    TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR_SIMD = (
        "target teams distribute parallel for simd"
    )
    TARGET_UPDATE = "target update"
    TARGET_ENTER_DATA = "target enter data"
    TARGET_EXIT_DATA = "target exit data"
    PARALLEL = "parallel"
    PARALLEL_FOR = "parallel for"
    FOR = "for"
    FOR_SIMD = "for simd"
    MASTER = "master"
    SIMD = "simd"

    @property
    def is_offload(self) -> bool:
        """True when the construct executes on (or manages) a target device."""
        return self.value.startswith("target")

    @property
    def has_teams(self) -> bool:
        return "teams" in self.value.split()

    @property
    def has_worksharing_loop(self) -> bool:
        return "for" in self.value.split() or "distribute" in self.value.split()

    @property
    def has_simd(self) -> bool:
        return "simd" in self.value.split()


#: Clause types admitted per directive kind.
_ALLOWED: "dict[DirectiveKind, Tuple[Type[Clause], ...]]" = {
    DirectiveKind.TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR: (
        NumTeams, ThreadLimit, Reduction, Map, NoWait, Device, Schedule,
    ),
    DirectiveKind.TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR_SIMD: (
        NumTeams, ThreadLimit, Reduction, Map, NoWait, Device, Schedule,
    ),
    DirectiveKind.TARGET_UPDATE: (Map, Device, NoWait),
    DirectiveKind.TARGET_ENTER_DATA: (Map, Device, NoWait),
    DirectiveKind.TARGET_EXIT_DATA: (Map, Device, NoWait),
    DirectiveKind.PARALLEL: (Reduction,),
    DirectiveKind.PARALLEL_FOR: (Reduction, Schedule),
    DirectiveKind.FOR: (Reduction, Schedule, NoWait),
    DirectiveKind.FOR_SIMD: (Reduction, Schedule, NoWait),
    DirectiveKind.MASTER: (),
    DirectiveKind.SIMD: (Reduction,),
}

#: Clause types that may appear at most once on a directive.
_UNIQUE = (NumTeams, ThreadLimit, Device, Schedule)


@dataclass(frozen=True)
class Directive:
    """A parsed OpenMP directive with validated clauses."""

    kind: DirectiveKind
    clauses: Tuple[Clause, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        allowed = _ALLOWED[self.kind]
        seen: "set[type]" = set()
        for clause in self.clauses:
            if not isinstance(clause, allowed):
                raise ClauseError(
                    f"clause {clause.keyword!r} is not valid on "
                    f"'#pragma omp {self.kind.value}'"
                )
            ctype = type(clause)
            if ctype in _UNIQUE and ctype in seen:
                raise ClauseError(
                    f"clause {clause.keyword!r} may appear at most once on "
                    f"'#pragma omp {self.kind.value}'"
                )
            seen.add(ctype)
        reduction_vars: "set[str]" = set()
        for clause in self.clauses:
            if not isinstance(clause, Reduction):
                continue
            for item in clause.items:
                if item in reduction_vars:
                    raise ClauseError(
                        f"list item {item!r} appears in more than one "
                        f"reduction clause on "
                        f"'#pragma omp {self.kind.value}'",
                        code=FUSED_DUPLICATE_VAR,
                    )
                reduction_vars.add(item)
        if self.kind is DirectiveKind.TARGET_UPDATE:
            if not any(isinstance(c, Map) for c in self.clauses):
                raise ClauseError(
                    "'target update' requires at least one motion clause"
                )

    # -- clause accessors -------------------------------------------------
    def first(self, clause_type: Type[Clause]):
        """The first clause of *clause_type*, or ``None``."""
        for clause in self.clauses:
            if isinstance(clause, clause_type):
                return clause
        return None

    def all(self, clause_type: Type[Clause]) -> Tuple[Clause, ...]:
        """All clauses of *clause_type*, in source order."""
        return tuple(c for c in self.clauses if isinstance(c, clause_type))

    @property
    def num_teams(self):
        return self.first(NumTeams)

    @property
    def thread_limit(self):
        return self.first(ThreadLimit)

    @property
    def reduction(self):
        return self.first(Reduction)

    @property
    def nowait(self) -> bool:
        return self.first(NoWait) is not None

    def render(self) -> str:
        """Reconstruct the pragma source line."""
        parts = [f"#pragma omp {self.kind.value}"]
        parts.extend(c.render() for c in self.clauses)
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
