"""Internal control variables (ICVs) and ``OMP_*`` environment handling.

Only the ICVs that influence target-region launch geometry are modelled:
``nteams-var`` (``OMP_NUM_TEAMS``), ``teams-thread-limit-var``
(``OMP_TEAMS_THREAD_LIMIT``), ``thread-limit-var`` (``OMP_THREAD_LIMIT``)
and ``default-device-var`` (``OMP_DEFAULT_DEVICE``).  Values requested by a
user "through directives or environment variables" are processed and
checked by the runtime (paper §III.A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from ..errors import OpenMPError

__all__ = ["ICVSet"]

_ENV_KEYS = {
    "OMP_NUM_TEAMS": "num_teams",
    "OMP_TEAMS_THREAD_LIMIT": "teams_thread_limit",
    "OMP_THREAD_LIMIT": "thread_limit",
    "OMP_DEFAULT_DEVICE": "default_device",
}


@dataclass(frozen=True)
class ICVSet:
    """A device's launch-relevant ICV values (``None`` = implementation default)."""

    num_teams: Optional[int] = None
    teams_thread_limit: Optional[int] = None
    thread_limit: Optional[int] = None
    default_device: int = 0

    def __post_init__(self) -> None:
        for name in ("num_teams", "teams_thread_limit", "thread_limit"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise OpenMPError(f"ICV {name} must be positive, got {value}")
        if self.default_device < 0:
            raise OpenMPError(
                f"default_device must be non-negative, got {self.default_device}"
            )

    @classmethod
    def from_environment(cls, env: Mapping[str, str]) -> "ICVSet":
        """Build an ICV set from an ``OMP_*`` environment mapping.

        Unknown ``OMP_`` keys are ignored (a conforming runtime may
        support extensions); malformed values raise :class:`OpenMPError`
        as the runtime "will process and check any values requested".
        """
        kwargs = {}
        for env_key, field in _ENV_KEYS.items():
            if env_key not in env:
                continue
            raw = env[env_key].strip()
            try:
                value = int(raw, 0)
            except ValueError as exc:
                raise OpenMPError(
                    f"environment variable {env_key}={raw!r} is not an integer"
                ) from exc
            kwargs[field] = value
        return cls(**kwargs)

    def override(self, **kwargs) -> "ICVSet":
        """Copy with the given fields replaced (directive-level overrides)."""
        return replace(self, **kwargs)
