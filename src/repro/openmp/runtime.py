"""Device-runtime launch decisions.

:class:`DeviceRuntime` resolves a ``target teams distribute parallel for``
directive plus its associated canonical loop into a concrete
:class:`LaunchGeometry`, applying — in priority order — directive clauses,
ICVs (environment), then the implementation-default heuristics of
:mod:`repro.openmp.heuristics`.  The paper verifies by profiling that "the
grid sizes of the GPU reduction kernels match the team sizes specified by
the num_teams clause"; tests assert the same through the launch trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import LaunchError
from ..hardware.spec import GpuSpec
from ..telemetry.state import span as tele_span
from ..util.validation import check_positive_int
from .canonical import ForLoop
from .directives import Directive, DirectiveKind
from .heuristics import default_num_teams, default_thread_limit
from .icv import ICVSet

__all__ = ["LaunchGeometry", "DeviceRuntime"]


@dataclass(frozen=True)
class LaunchGeometry:
    """Resolved kernel launch geometry.

    ``grid`` is the number of teams (CUDA blocks), ``block`` the number of
    threads per team; ``from_clause`` records whether ``grid`` came from an
    explicit ``num_teams`` clause (used by the profiling benchmarks).
    """

    grid: int
    block: int
    from_clause: bool

    def __post_init__(self) -> None:
        check_positive_int(self.grid, "grid")
        check_positive_int(self.block, "block")

    @property
    def total_threads(self) -> int:
        return self.grid * self.block


class DeviceRuntime:
    """Launch-geometry resolution for one target device.

    Parameters
    ----------
    gpu:
        The device the runtime drives; used to clamp thread counts.
    icvs:
        Initial ICV values (e.g. parsed from ``OMP_*`` variables).
    """

    def __init__(self, gpu: GpuSpec, icvs: Optional[ICVSet] = None):
        self.gpu = gpu
        self.icvs = icvs or ICVSet()

    def resolve_launch(
        self,
        directive: Directive,
        loop: ForLoop,
        env: Optional[Mapping[str, int]] = None,
    ) -> LaunchGeometry:
        """Resolve *directive* applied to *loop* into a launch geometry.

        Parameters
        ----------
        env:
            Binding environment for symbolic clause expressions such as
            ``num_teams(teams/V)``.

        Raises
        ------
        LaunchError
            If the directive is not an offloadable worksharing construct
            or the resolved geometry exceeds device limits.
        """
        with tele_span("resolve_launch", category="openmp") as sp:
            if not (directive.kind.is_offload and directive.kind.has_teams):
                raise LaunchError(
                    f"'#pragma omp {directive.kind.value}' is not a target "
                    "teams worksharing construct"
                )

            block = self._resolve_block(directive, env)
            grid, from_clause = self._resolve_grid(directive, loop, block, env)

            if block > self.gpu.max_threads_per_block:
                raise LaunchError(
                    f"thread_limit {block} exceeds device maximum "
                    f"{self.gpu.max_threads_per_block}"
                )
            if block % self.gpu.warp_size:
                # Real runtimes round the contention-group size up to whole
                # warps; model the same so the occupancy math stays exact.
                block = -(-block // self.gpu.warp_size) * self.gpu.warp_size
            sp.set(grid=grid, block=block, from_clause=from_clause)
            return LaunchGeometry(
                grid=grid, block=block, from_clause=from_clause
            )

    # -- internals ---------------------------------------------------------
    def _resolve_block(self, directive: Directive, env) -> int:
        clause = directive.thread_limit
        if clause is not None:
            return clause.value.evaluate(env)
        if self.icvs.teams_thread_limit is not None:
            return min(
                self.icvs.teams_thread_limit, self.gpu.max_threads_per_block
            )
        if self.icvs.thread_limit is not None:
            return min(self.icvs.thread_limit, self.gpu.max_threads_per_block)
        return default_thread_limit(None)

    def _resolve_grid(self, directive, loop: ForLoop, block: int, env):
        clause = directive.num_teams
        if clause is not None:
            return clause.value.evaluate(env), True
        if self.icvs.num_teams is not None:
            return self.icvs.num_teams, False
        return default_num_teams(loop.trip_count, block), False
