"""Launch-geometry heuristics of the modelled device runtime.

These encode exactly what the paper *profiles* on the NVHPC runtime
(§III.C):

* when ``num_teams`` is absent, "the OpenMP runtime selects a grid size
  that is equal to the number of input values divided by the number of
  threads in a team" for C1/C3/C4;
* but "the grid size is 16777215 (0xFFFFFF) for C2, which is less than the
  number of input values divided by the number of threads in a team" — a
  hard grid cap the heuristic applies;
* "the number of threads in a team is 128 in any case" when no
  ``thread_limit`` is given.

The paper's Table 1 demonstrates these defaults leave 85-96% of memory
bandwidth on the table, which is the motivation for the optimized
configurations — so reproducing the heuristic faithfully matters.
"""

from __future__ import annotations

from ..util.validation import check_positive_int

__all__ = [
    "DEFAULT_THREADS_PER_TEAM",
    "DEFAULT_GRID_CAP",
    "default_num_teams",
    "default_thread_limit",
]

#: Threads per team the runtime picks when ``thread_limit`` is absent.
DEFAULT_THREADS_PER_TEAM = 128

#: Hard cap on the default grid size (the 0xFFFFFF ceiling the paper
#: observes for case C2's 4-billion-element loop).
DEFAULT_GRID_CAP = 0xFFFFFF  # 16_777_215


def default_thread_limit(requested: "int | None" = None) -> int:
    """Threads per team: the request if given, else the 128 default."""
    if requested is None:
        return DEFAULT_THREADS_PER_TEAM
    return check_positive_int(requested, "thread_limit")


def default_num_teams(trip_count: int, threads_per_team: int) -> int:
    """Default grid size for a worksharing loop of *trip_count* iterations.

    ``min(ceil(trip_count / threads_per_team), 0xFFFFFF)`` — one thread per
    iteration up to the runtime's grid ceiling, matching the profiled
    behaviour for all four paper cases.
    """
    check_positive_int(trip_count, "trip_count")
    check_positive_int(threads_per_team, "threads_per_team")
    grid = -(-trip_count // threads_per_team)
    return min(grid, DEFAULT_GRID_CAP)
