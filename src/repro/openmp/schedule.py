"""Worksharing-loop schedules (OpenMP 5.1 §2.11.4).

Listing 7's host loop is a worksharing ``for simd``; its iterations are
divided among the team's threads according to the schedule clause.  These
functions compute the exact chunk assignments:

* ``static`` without a chunk: one contiguous block per thread, sizes as
  equal as possible (this is what the paper's loop uses);
* ``static, chunk``: round-robin chunks of the given size;
* ``dynamic, chunk``: first-come-first-served chunks — modelled
  deterministically as round-robin grab order (all our loop bodies are
  uniform, so grab order equals round-robin);
* ``guided, chunk``: exponentially decreasing chunks,
  ``ceil(remaining / nthreads)`` floored at the minimum chunk size.

All return per-thread lists of ``(start, length)`` iterations; the
functional executors and the contention model consume them.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import OpenMPError
from ..util.validation import check_positive_int

__all__ = [
    "ChunkList",
    "static_chunks",
    "dynamic_chunks",
    "guided_chunks",
    "chunks_for",
    "thread_totals",
]

#: Per-thread list of (start, length) chunks.
ChunkList = List[List[Tuple[int, int]]]


def static_chunks(trip: int, nthreads: int, chunk: "int | None" = None) -> ChunkList:
    """The ``static`` schedule.

    Without a chunk size, iterations split into at most ``nthreads``
    contiguous blocks whose sizes differ by at most one (the common
    "big chunks first" convention).  With one, chunks of exactly
    ``chunk`` iterations are assigned round-robin.
    """
    check_positive_int(trip, "trip")
    check_positive_int(nthreads, "nthreads")
    out: ChunkList = [[] for _ in range(nthreads)]
    if chunk is None:
        base, extra = divmod(trip, nthreads)
        start = 0
        for tid in range(nthreads):
            size = base + (1 if tid < extra else 0)
            if size:
                out[tid].append((start, size))
            start += size
        return out
    check_positive_int(chunk, "chunk")
    index = 0
    start = 0
    while start < trip:
        size = min(chunk, trip - start)
        out[index % nthreads].append((start, size))
        index += 1
        start += size
    return out


def dynamic_chunks(trip: int, nthreads: int, chunk: int = 1) -> ChunkList:
    """The ``dynamic`` schedule under uniform iteration cost.

    With uniform bodies every thread returns to the queue at the same
    cadence, so the deterministic grab order is round-robin — identical
    chunk geometry to ``static, chunk``, different *semantics* (and the
    distinction matters once per-iteration costs vary).
    """
    return static_chunks(trip, nthreads, chunk=chunk)


def guided_chunks(trip: int, nthreads: int, min_chunk: int = 1) -> ChunkList:
    """The ``guided`` schedule: chunk = ceil(remaining / nthreads).

    Chunks shrink geometrically down to ``min_chunk``; assignment order is
    round-robin (uniform bodies, as above).
    """
    check_positive_int(trip, "trip")
    check_positive_int(nthreads, "nthreads")
    check_positive_int(min_chunk, "min_chunk")
    out: ChunkList = [[] for _ in range(nthreads)]
    start = 0
    index = 0
    remaining = trip
    while remaining > 0:
        size = max(min_chunk, -(-remaining // nthreads))
        size = min(size, remaining)
        out[index % nthreads].append((start, size))
        start += size
        remaining -= size
        index += 1
    return out


def chunks_for(kind: str, trip: int, nthreads: int,
               chunk: "int | None" = None) -> ChunkList:
    """Dispatch on a schedule kind name."""
    if kind == "static":
        return static_chunks(trip, nthreads, chunk)
    if kind == "dynamic":
        return dynamic_chunks(trip, nthreads, chunk or 1)
    if kind == "guided":
        return guided_chunks(trip, nthreads, chunk or 1)
    if kind in ("auto", "runtime"):
        # Implementation-defined: our runtime picks plain static.
        return static_chunks(trip, nthreads, None)
    raise OpenMPError(f"unknown schedule kind {kind!r}")


def thread_totals(chunks: ChunkList) -> List[int]:
    """Iterations per thread."""
    return [sum(size for _, size in per_thread) for per_thread in chunks]
