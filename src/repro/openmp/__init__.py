"""A small OpenMP 5.x device-offload front end and runtime model.

This package implements the subset of OpenMP the paper's Listings 2-8
exercise:

* the combined ``target teams distribute parallel for`` worksharing-loop
  construct with ``num_teams``, ``thread_limit``, ``reduction``, ``map``,
  ``nowait``, ``device`` and ``schedule`` clauses;
* host-side ``parallel``, ``master``, ``for simd`` constructs used by the
  co-execution Listing 7;
* ``target update to/from`` used by the measurement Listing 6;
* canonical-loop-form validation, including the NVHPC-specific rejection of
  the Listing 4 increment form;
* internal control variables (ICVs) with ``OMP_*`` environment handling;
* the device runtime's launch-geometry heuristics, including the observed
  default grid ``M / threads-per-team`` with the ``0xFFFFFF`` cap the paper
  profiles for case C2.
"""

from .clauses import (
    Clause,
    NumTeams,
    ThreadLimit,
    Reduction,
    Map,
    MapKind,
    NoWait,
    Device,
    Schedule,
    Simd,
)
from .directives import Directive, DirectiveKind
from .parser import parse_pragma
from .canonical import ForLoop, check_canonical, nvhpc_supported
from .reduction_ops import (
    ReductionOp,
    get_reduction_op,
    REDUCTION_OPS,
    ExtendedReduction,
    EXTENDED_REDUCTIONS,
    ALL_REDUCTION_IDENTIFIERS,
    validate_reduction,
    required_arrays,
)
from .icv import ICVSet
from .heuristics import default_num_teams, default_thread_limit, DEFAULT_GRID_CAP
from .runtime import DeviceRuntime, LaunchGeometry

__all__ = [
    "Clause",
    "NumTeams",
    "ThreadLimit",
    "Reduction",
    "Map",
    "MapKind",
    "NoWait",
    "Device",
    "Schedule",
    "Simd",
    "Directive",
    "DirectiveKind",
    "parse_pragma",
    "ForLoop",
    "check_canonical",
    "nvhpc_supported",
    "ReductionOp",
    "get_reduction_op",
    "REDUCTION_OPS",
    "ExtendedReduction",
    "EXTENDED_REDUCTIONS",
    "ALL_REDUCTION_IDENTIFIERS",
    "validate_reduction",
    "required_arrays",
    "ICVSet",
    "default_num_teams",
    "default_thread_limit",
    "DEFAULT_GRID_CAP",
    "DeviceRuntime",
    "LaunchGeometry",
]
