"""Parser for ``#pragma omp`` source lines.

The parser accepts exactly the directive/clause subset in
:mod:`repro.openmp.directives`, including all the pragma forms that appear
in the paper's Listings 2-8 (line continuations with ``\\`` included).

>>> d = parse_pragma(
...     "#pragma omp target teams distribute parallel for "
...     "num_teams(teams/V) thread_limit(threads) reduction(+:sum)")
>>> d.kind.value
'target teams distribute parallel for'
>>> d.num_teams.value.text
'teams/V'
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import DirectiveSyntaxError
from .clauses import (
    Device,
    IntExpr,
    Map,
    MapKind,
    NoWait,
    NumTeams,
    Reduction,
    Schedule,
    ThreadLimit,
)
from .directives import Directive, DirectiveKind

__all__ = ["parse_pragma"]

# Directive names sorted longest-first so the combined constructs win.
_KINDS_BY_LENGTH = sorted(
    DirectiveKind, key=lambda k: len(k.value.split()), reverse=True
)

_REDUCTION_IDENTIFIERS = ("+", "*", "-", "&&", "||", "&", "|", "^", "max", "min",
                          "argmax", "dot")


def _normalize(text: str) -> str:
    """Join continuation lines and collapse whitespace."""
    text = text.replace("\\\n", " ").replace("\\", " ")
    return re.sub(r"\s+", " ", text).strip()


def _split_clause_tokens(rest: str, pragma: str) -> List[str]:
    """Split the clause region into ``keyword`` / ``keyword(...)`` tokens."""
    tokens: List[str] = []
    i, n = 0, len(rest)
    while i < n:
        if rest[i].isspace() or rest[i] == ",":
            i += 1
            continue
        start = i
        while i < n and (rest[i].isalnum() or rest[i] == "_"):
            i += 1
        if i == start:
            raise DirectiveSyntaxError(
                f"unexpected character {rest[i]!r} in clause list",
                pragma=pragma,
                position=i,
            )
        keyword_end = i
        while i < n and rest[i].isspace():
            i += 1
        if i < n and rest[i] == "(":
            depth = 0
            arg_start = i
            while i < n:
                if rest[i] == "(":
                    depth += 1
                elif rest[i] == ")":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            if depth != 0:
                raise DirectiveSyntaxError(
                    "unbalanced parentheses in clause",
                    pragma=pragma,
                    position=arg_start,
                )
            tokens.append(rest[start:keyword_end] + rest[arg_start:i])
        else:
            tokens.append(rest[start:keyword_end])
    return tokens


def _clause_parts(token: str) -> Tuple[str, Optional[str]]:
    """Split ``keyword(arg)`` into (keyword, arg) — arg ``None`` if absent."""
    if "(" not in token:
        return token, None
    keyword, _, rest = token.partition("(")
    return keyword.strip(), rest[:-1].strip()  # strip trailing ')'


def _parse_section(expr: str) -> Tuple[str, Optional[Tuple[str, str]]]:
    """Parse ``var`` or ``var[lb:len]`` into (var, section)."""
    match = re.fullmatch(r"\s*([A-Za-z_]\w*)\s*(\[([^:\]]*):([^\]]*)\])?\s*", expr)
    if not match:
        raise DirectiveSyntaxError(f"malformed map list item {expr!r}")
    var = match.group(1)
    if match.group(2) is None:
        return var, None
    return var, (match.group(3).strip(), match.group(4).strip())


def _parse_clause(keyword: str, arg: Optional[str], pragma: str):
    if keyword == "num_teams":
        if not arg:
            raise DirectiveSyntaxError("num_teams requires an argument", pragma)
        return NumTeams(IntExpr(arg))
    if keyword == "thread_limit":
        if not arg:
            raise DirectiveSyntaxError("thread_limit requires an argument", pragma)
        return ThreadLimit(IntExpr(arg))
    if keyword == "reduction":
        if not arg or ":" not in arg:
            raise DirectiveSyntaxError(
                "reduction requires 'identifier : list'", pragma
            )
        ident, _, items = arg.partition(":")
        ident = ident.strip()
        if ident not in _REDUCTION_IDENTIFIERS:
            raise DirectiveSyntaxError(
                f"unknown reduction-identifier {ident!r}", pragma
            )
        names = tuple(s.strip() for s in items.split(",") if s.strip())
        return Reduction(ident, names)
    if keyword == "map":
        if not arg:
            raise DirectiveSyntaxError("map requires an argument", pragma)
        if ":" in arg and arg.split(":", 1)[0].strip() in MapKind._value2member_map_:
            kind_text, _, item = arg.partition(":")
            kind = MapKind(kind_text.strip())
        else:
            kind, item = MapKind.TOFROM, arg
        var, section = _parse_section(item)
        return Map(kind, var, section)
    if keyword in ("to", "from"):  # target update motion clauses
        if not arg:
            raise DirectiveSyntaxError(f"{keyword} requires an argument", pragma)
        var, section = _parse_section(arg)
        return Map(MapKind(keyword), var, section)
    if keyword == "nowait":
        if arg is not None:
            raise DirectiveSyntaxError("nowait takes no argument", pragma)
        return NoWait()
    if keyword == "device":
        if not arg:
            raise DirectiveSyntaxError("device requires an argument", pragma)
        try:
            return Device(int(arg, 0))
        except ValueError as exc:
            raise DirectiveSyntaxError(
                f"device argument must be an integer, got {arg!r}", pragma
            ) from exc
    if keyword == "schedule":
        if not arg:
            raise DirectiveSyntaxError("schedule requires an argument", pragma)
        kind, _, chunk = arg.partition(",")
        chunk_val = None
        if chunk.strip():
            try:
                chunk_val = int(chunk.strip(), 0)
            except ValueError as exc:
                raise DirectiveSyntaxError(
                    f"schedule chunk must be an integer, got {chunk!r}", pragma
                ) from exc
        return Schedule(kind.strip(), chunk_val)
    raise DirectiveSyntaxError(f"unknown clause {keyword!r}", pragma)


def parse_pragma(text: str) -> Directive:
    """Parse one ``#pragma omp`` line (continuations allowed) to a Directive.

    Raises
    ------
    DirectiveSyntaxError
        On any malformed pragma, unknown directive, or unknown clause.
    ClauseError
        When clauses are syntactically valid but not applicable to the
        directive (raised by :class:`~repro.openmp.directives.Directive`).
    """
    pragma = _normalize(text)
    match = re.match(r"#\s*pragma\s+omp\b\s*", pragma)
    if not match:
        raise DirectiveSyntaxError(
            "pragma must start with '#pragma omp'", pragma=pragma, position=0
        )
    body = pragma[match.end():]
    for kind in _KINDS_BY_LENGTH:
        name = kind.value
        if body == name or body.startswith(name + " ") or (
            body.startswith(name) and body[len(name):].lstrip().startswith(
                ("num_teams", "thread_limit", "reduction", "map", "nowait",
                 "device", "schedule", "to(", "from(")
            )
        ):
            rest = body[len(name):]
            tokens = _split_clause_tokens(rest, pragma)
            clauses = tuple(
                _parse_clause(*_clause_parts(tok), pragma=pragma) for tok in tokens
            )
            return Directive(kind, clauses)
    raise DirectiveSyntaxError(
        f"unknown or unsupported directive in {pragma!r}",
        pragma=pragma,
        position=match.end(),
    )
