"""Device data environment: explicit ``map`` semantics (non-UM mode).

When the program is *not* compiled with ``-gpu=mem:unified``, the OpenMP
data clauses manage a device copy of each mapped variable (OpenMP 5.1
§2.21.7): a present table keyed by host address with reference counts,
allocation on first mapping, host-to-device transfer for ``to``/``tofrom``
maps, device-to-host on ``from``/``tofrom`` release, and ``target update``
motion in between.

The paper's §III measurement runs in this mode ("the host-to-device
transfer of input numbers is not included in the timing measurement" — the
array is mapped once outside the timed loop, and only the scalar ``sum``
moves per trial).  The model makes those costs explicit, which also powers
the non-UM co-execution extension experiment (every trial would re-copy
the GPU's slice over the link — the case the paper avoids by using UM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import MemoryModelError
from ..hardware.spec import LinkSpec
from ..memory.migration import MigrationEngine
from ..util.validation import check_positive_int

__all__ = ["MappedVariable", "DeviceDataEnvironment"]


@dataclass
class MappedVariable:
    """One entry of the present table."""

    name: str
    nbytes: int
    ref_count: int = 1
    device_resident: bool = True


class DeviceDataEnvironment:
    """Present table + transfer cost accounting for one target device.

    All methods return the *seconds* of link traffic they imply, so the
    measurement harnesses can fold data movement into trial times.
    """

    def __init__(self, link: LinkSpec, device_capacity_bytes: int):
        self.link = link
        self.device_capacity_bytes = check_positive_int(
            device_capacity_bytes, "device_capacity_bytes"
        )
        self._engine = MigrationEngine(link, page_bytes=64 * 1024)
        self._present: Dict[str, MappedVariable] = {}
        self._allocated_bytes = 0
        self.total_h2d_bytes = 0
        self.total_d2h_bytes = 0

    # -- queries ---------------------------------------------------------
    def is_present(self, name: str) -> bool:
        return name in self._present

    def ref_count(self, name: str) -> int:
        entry = self._present.get(name)
        return entry.ref_count if entry else 0

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    # -- mapping lifecycle --------------------------------------------------
    def map_to(self, name: str, nbytes: int) -> float:
        """``map(to:)`` / enter-data: allocate + copy in on first mapping.

        Re-mapping an already-present variable only bumps the reference
        count (OpenMP present-table semantics) and moves no data.
        """
        check_positive_int(nbytes, "nbytes")
        if name in self._present:
            entry = self._present[name]
            if entry.nbytes != nbytes:
                raise MemoryModelError(
                    f"variable {name!r} re-mapped with different size "
                    f"({entry.nbytes} vs {nbytes})"
                )
            entry.ref_count += 1
            return 0.0
        if self._allocated_bytes + nbytes > self.device_capacity_bytes:
            raise MemoryModelError(
                f"device memory exhausted mapping {name!r}: "
                f"{self._allocated_bytes} + {nbytes} > "
                f"{self.device_capacity_bytes}"
            )
        self._present[name] = MappedVariable(name, nbytes)
        self._allocated_bytes += nbytes
        self.total_h2d_bytes += nbytes
        return self._engine.bulk_copy_seconds(nbytes)

    def map_alloc(self, name: str, nbytes: int) -> float:
        """``map(alloc:)``: allocate without a copy."""
        seconds = self.map_to(name, nbytes)
        if seconds > 0.0:
            self.total_h2d_bytes -= nbytes
        return 0.0

    def unmap(self, name: str, copy_out: bool = False) -> float:
        """Release one mapping; frees and optionally copies out at zero refs."""
        entry = self._present.get(name)
        if entry is None:
            raise MemoryModelError(f"variable {name!r} is not mapped")
        entry.ref_count -= 1
        if entry.ref_count > 0:
            return 0.0
        del self._present[name]
        self._allocated_bytes -= entry.nbytes
        if copy_out:
            self.total_d2h_bytes += entry.nbytes
            return self._engine.bulk_copy_seconds(entry.nbytes)
        return 0.0

    # -- motion clauses -----------------------------------------------------
    def update_to(self, name: str, nbytes: Optional[int] = None) -> float:
        """``target update to(...)``: refresh the device copy."""
        return self._update(name, nbytes, to_device=True)

    def update_from(self, name: str, nbytes: Optional[int] = None) -> float:
        """``target update from(...)``: refresh the host copy."""
        return self._update(name, nbytes, to_device=False)

    def _update(self, name: str, nbytes: Optional[int], to_device: bool) -> float:
        entry = self._present.get(name)
        if entry is None:
            raise MemoryModelError(
                f"'target update' on {name!r}, which is not mapped"
            )
        size = entry.nbytes if nbytes is None else nbytes
        if size > entry.nbytes:
            raise MemoryModelError(
                f"'target update' of {size} bytes exceeds {name!r}'s "
                f"mapped size {entry.nbytes}"
            )
        if to_device:
            self.total_h2d_bytes += size
        else:
            self.total_d2h_bytes += size
        return self._engine.bulk_copy_seconds(size)
