"""Scalar-type registry used throughout the library.

The paper's four evaluation cases combine an input element type ``T`` with a
(possibly wider) accumulator/result type ``R`` (§II.A: "The data types are
not necessarily the same").  This module gives every supported scalar type a
stable name, a byte size, and a NumPy dtype, plus helpers to reason about
accumulation semantics (integer wraparound vs. floating-point rounding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import SpecError

__all__ = [
    "ScalarType",
    "INT8",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "SCALAR_TYPES",
    "scalar_type",
]


@dataclass(frozen=True)
class ScalarType:
    """A scalar element type understood by the reduction kernels.

    Parameters
    ----------
    name:
        Canonical lower-case name (``"int32"``, ``"float64"``, ...).
    size:
        Width in bytes.
    np_dtype:
        The corresponding NumPy dtype (stored as its canonical ``str`` so the
        dataclass stays hashable).
    is_integer:
        ``True`` for the fixed-point types.  Integer accumulation wraps
        modulo ``2**bits`` (two's complement) exactly as C signed overflow
        behaves on the evaluated hardware; floating accumulation rounds.
    """

    name: str
    size: int
    np_dtype: str
    is_integer: bool

    @property
    def numpy(self) -> np.dtype:
        """Return the NumPy dtype object for this scalar type."""
        return np.dtype(self.np_dtype)

    @property
    def bits(self) -> int:
        """Width in bits."""
        return self.size * 8

    def zero(self):
        """The additive identity as a NumPy scalar of this type."""
        return self.numpy.type(0)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


INT8 = ScalarType("int8", 1, "int8", True)
INT32 = ScalarType("int32", 4, "int32", True)
INT64 = ScalarType("int64", 8, "int64", True)
FLOAT32 = ScalarType("float32", 4, "float32", False)
FLOAT64 = ScalarType("float64", 8, "float64", False)

#: All registered scalar types keyed by canonical name.
SCALAR_TYPES = {t.name: t for t in (INT8, INT32, INT64, FLOAT32, FLOAT64)}

_ALIASES = {
    "i8": "int8",
    "i32": "int32",
    "i64": "int64",
    "f32": "float32",
    "f64": "float64",
    "float": "float32",
    "double": "float64",
    "int": "int32",
    "char": "int8",
    "signed char": "int8",
    "long": "int64",
    "long long": "int64",
}


def scalar_type(spec) -> ScalarType:
    """Coerce *spec* to a :class:`ScalarType`.

    Accepts a :class:`ScalarType`, a canonical or C-style alias name, or a
    NumPy dtype / dtype-like object.

    Raises
    ------
    SpecError
        If the type is not one of the five types the reductions support.
    """
    if isinstance(spec, ScalarType):
        return spec
    if isinstance(spec, str):
        name = _ALIASES.get(spec.strip().lower(), spec.strip().lower())
        if name in SCALAR_TYPES:
            return SCALAR_TYPES[name]
        raise SpecError(f"unknown scalar type {spec!r}")
    try:
        name = np.dtype(spec).name
    except TypeError as exc:
        raise SpecError(f"cannot interpret {spec!r} as a scalar type") from exc
    if name in SCALAR_TYPES:
        return SCALAR_TYPES[name]
    raise SpecError(f"unsupported scalar type {name!r}")
