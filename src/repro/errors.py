"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.  The
sub-classes mirror the major subsystems:

* :class:`SpecError` — invalid hardware description.
* :class:`OpenMPError` and its children — directive parsing, clause
  validation, and canonical-loop-form failures.  :class:`CompileError`
  mirrors the NVHPC front-end diagnostics the paper reports (e.g. the
  Listing-4 loop increment that the vendor compiler rejects).
* :class:`MemoryModelError` — unified-memory / allocator misuse.
* :class:`LaunchError` — invalid kernel launch geometry.
* :class:`MeasurementError` — invalid trial-harness configuration.
* :class:`VerificationError` — GPU-vs-CPU result mismatch (paper §III.B:
  "The GPU results are verified using the CPU results").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library.

    Errors that correspond to a *stable, documented* front-end diagnostic
    carry a short machine-readable ``code`` (e.g. ``"OMP-RED-101"``) so
    that reject-path tests and the fuzzer can pin the contract without
    string-matching messages.  ``code`` is ``None`` for errors that have
    no published diagnostic.
    """

    code: "str | None" = None


class SpecError(ReproError, ValueError):
    """A hardware specification is inconsistent or out of range."""


class OpenMPError(ReproError):
    """Base class for OpenMP front-end and runtime errors."""


class DirectiveSyntaxError(OpenMPError, ValueError):
    """A ``#pragma omp`` line could not be parsed.

    Attributes
    ----------
    pragma:
        The offending pragma text.
    position:
        Character offset of the first unparsable token, or ``None``.
    """

    def __init__(self, message: str, pragma: str = "", position: "int | None" = None,
                 code: "str | None" = None):
        super().__init__(message)
        self.pragma = pragma
        self.position = position
        if code is not None:
            self.code = code


class ClauseError(OpenMPError, ValueError):
    """A clause is malformed, duplicated, or invalid for its directive."""

    def __init__(self, message: str, code: "str | None" = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class CanonicalLoopError(OpenMPError, ValueError):
    """The associated loop does not have OpenMP canonical loop form.

    The NVHPC compiler emits this class of diagnostic for the paper's
    Listing 4 (``for (i = 0; i < M; i = i + V)`` with a manually unrolled
    body); the rewritten Listing 5 is accepted.
    """


class CompileError(OpenMPError):
    """The simulated NVHPC front end rejected a program."""

    def __init__(self, message: str, diagnostics: "tuple | list | None" = None):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics or ())


class UnsupportedReductionError(OpenMPError, ValueError):
    """The reduction-identifier is not one the runtime implements."""

    def __init__(self, message: str, code: "str | None" = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class MemoryModelError(ReproError, RuntimeError):
    """Illegal operation against the simulated memory subsystem."""


class AllocationError(MemoryModelError):
    """An allocation could not be satisfied (out of memory, bad size)."""


class PageStateError(MemoryModelError):
    """A page transitioned illegally (e.g. freeing an unmapped page)."""


class LaunchError(ReproError, ValueError):
    """Kernel launch geometry is invalid (zero teams, oversized block...)."""


class MeasurementError(ReproError, ValueError):
    """The timing harness was configured with invalid parameters."""


class VerificationError(ReproError, AssertionError):
    """Device result does not match the host reference result."""

    def __init__(self, message: str, expected=None, actual=None):
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine reached an inconsistent state."""
