"""Batch-vectorized slab evaluation of GPU sweep points.

:func:`evaluate_gpu_slab` prices an entire *slab* — a list of
``(case, config, trials, verify)`` points, exactly the payloads of the
executor's ``gpu_point`` task — in a few NumPy passes instead of one
trip through :func:`~repro.core.timing.measure_gpu_reduction` per point.
It produces the same result records, **byte-identical** under
:func:`~repro.sweep.fingerprint.canonical_json`, because every
arithmetic expression mirrors the scalar model's operation order exactly
(IEEE-754 float64 elementwise operations are deterministic, so an
identical expression tree over identical inputs yields identical bits):

1. per-point *validation* walks the slab in submission order and raises
   the same exception type and message, at the same first failing point,
   as the serial loop would (trials / divisibility / thread_limit /
   device capacity / occupancy);
2. per-point model constants come from the precomputed
   :class:`~repro.sim.tables.ModelTables` rows (gathered into arrays)
   instead of per-point calibration lookups;
3. the kernel-time model of :func:`~repro.gpu.perf.estimate_kernel_time`
   runs once over arrays;
4. functional values are memoized per machine: integer reductions are
   geometry-independent (modular addition is associative — any grouping
   yields ``sum mod 2**bits``), so one ``np.add.reduce`` per
   (T, R, size) serves every geometry; float reductions are
   grouping-dependent, so the scalar executor runs once per distinct
   (T, R, size, grid, block, V) and is replayed from the memo after.

Known, intentional divergence from the serial loop: the slab validates
*every* point before computing any, so when two points would both raise,
the earlier point's error wins even if the serial loop would have
recorded some launches first — trace contents on *exception* paths may
differ (successful slabs record identical launch traces, in order).

Fault injection: the executor's worker-side slab task fires the
``slab.evaluate`` point *around* this function (see
:func:`repro.sweep.executor._task_gpu_slab`) so crash / hang / slow /
wrong_result modes interact with the shared-memory transport the way
``worker.task`` interacts with the pickle transport; the evaluator
itself stays a pure function.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.verify import verify_result
from ..errors import LaunchError, MeasurementError, MemoryModelError
from ..gpu.exec_model import _execute_reduction
from ..gpu.kernels import ReductionKernel
from ..openmp.heuristics import default_num_teams, default_thread_limit
from ..openmp.reduction_ops import required_arrays
from ..openmp.runtime import LaunchGeometry
from ..telemetry.state import metrics
from .tables import ModelTables, tables_for
from .trace import KernelLaunchRecord

__all__ = ["evaluate_gpu_slab", "SLAB_POINT_BUCKETS"]

#: ``slab.points_per_batch`` histogram buckets (points per evaluate call).
SLAB_POINT_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0
)


def _resolve_point(machine, tables: ModelTables, case, config,
                   op: str = "+") -> tuple:
    """Launch geometry + kernel name for one point, scalar-path order.

    Mirrors ``cached_compile(program).launch(...)`` →
    :meth:`~repro.openmp.runtime.DeviceRuntime.resolve_launch` without
    building program/directive objects: clause values first, then ICVs,
    then the heuristics, then the device thread limit check, then the
    round-up to a whole warp.  Non-sum identifiers append the scalar
    path's ``_{op}`` program-name suffix.
    """
    gpu = tables.gpu
    icvs = machine.runtime.icvs
    suffix = "" if op == "+" else f"_{op}"
    if config is not None:
        if case.elements % config.v:
            raise LaunchError(
                f"case {case.name}: M={case.elements} is not divisible by "
                f"v={config.v}"
            )
        v = config.v
        # thread_limit(threads) / num_teams(teams/V) clause evaluations.
        block = config.threads
        grid, from_clause = config.teams // config.v, True
        name = f"{case.name.lower()}_optimized{suffix}_v{v}"
    else:
        v = 1
        if icvs.teams_thread_limit is not None:
            block = min(icvs.teams_thread_limit, gpu.max_threads_per_block)
        elif icvs.thread_limit is not None:
            block = min(icvs.thread_limit, gpu.max_threads_per_block)
        else:
            block = default_thread_limit(None)
        if icvs.num_teams is not None:
            grid, from_clause = icvs.num_teams, False
        else:
            grid, from_clause = default_num_teams(case.elements, block), False
        name = f"{case.name.lower()}_baseline{suffix}_v{v}"
    if block > gpu.max_threads_per_block:
        raise LaunchError(
            f"thread_limit {block} exceeds device maximum "
            f"{gpu.max_threads_per_block}"
        )
    if block % gpu.warp_size:
        block = -(-block // gpu.warp_size) * gpu.warp_size
    return grid, block, from_clause, v, name


def _validate_point(tables: ModelTables, case, grid: int, block: int,
                    arrays: int = 1) -> None:
    """The scalar path's post-launch checks, in its order."""
    # DeviceDataEnvironment: map_to("in", M*sizeof(T)) [, map_to("in2",
    # ...) for two-array ops], map_alloc("sum", R).
    capacity = tables.device_capacity_bytes
    if case.input_bytes > capacity:
        raise MemoryModelError(
            f"device memory exhausted mapping 'in': "
            f"0 + {case.input_bytes} > {capacity}"
        )
    mapped = case.input_bytes
    if arrays > 1:
        if mapped + case.input_bytes > capacity:
            raise MemoryModelError(
                f"device memory exhausted mapping 'in2': "
                f"{mapped} + {case.input_bytes} > {capacity}"
            )
        mapped += case.input_bytes
    rsize = case.result_type.size
    if mapped + rsize > capacity:
        raise MemoryModelError(
            f"device memory exhausted mapping 'sum': "
            f"{mapped} + {rsize} > {capacity}"
        )
    # occupancy(): the warps-per-SM residency bound.
    wpb = -(-block // tables.warp_size)
    if wpb > tables.max_warps_per_sm:
        raise LaunchError(
            f"a {block}-thread block needs {wpb} warps, more than the "
            f"{tables.max_warps_per_sm} an SM can hold"
        )


def _value_for(machine, case, grid: int, block: int, v: int, name: str,
               do_verify: bool, op: str = "+"):
    """Functional value for one point, memoized on *machine*.

    Integer sums are geometry-independent; float sums key on the full
    schedule shape.  Non-sum identifiers always key on the full shape
    plus the op and run the *same* hierarchical executor as the scalar
    path (byte-identity by construction).  Verification (against the
    host reference) runs once per distinct value key and is skipped on
    memo hits — it can only ever pass, since the value is computed from
    the same workload the reference reduces.
    """
    memo = getattr(machine, "_slab_value_cache", None)
    if memo is None:
        memo = machine._slab_value_cache = {}
    etype, rtype = case.element_type, case.result_type
    n = machine.functional_elements(case)
    if op != "+":
        key = (op, etype.name, rtype.name, n, grid, block, v)
    elif rtype.is_integer:
        key = (etype.name, rtype.name, n)
    else:
        key = (etype.name, rtype.name, n, grid, block, v)
    hit = memo.get(key)
    if hit is not None and (not do_verify or hit[1]):
        return hit[0]
    data = machine.workload(case)
    second = machine.workload_pair(case) if op == "dot" else None
    if hit is None:
        if op == "+" and rtype.is_integer:
            # Modular addition is associative: every grouping yields the
            # same wrapped sum, so skip the hierarchical schedule.
            value = rtype.numpy.type(np.add.reduce(data, dtype=rtype.numpy))
        else:
            kernel = ReductionKernel(
                name=name,
                geometry=LaunchGeometry(grid=grid, block=block,
                                        from_clause=True),
                elements=case.elements,
                elements_per_iteration=v,
                element_type=etype,
                result_type=rtype,
                identifier=op,
                arrays=required_arrays(op),
            )
            value = _execute_reduction(data, kernel, second)
    else:
        value = hit[0]
    if do_verify:
        verify_result(value, data, rtype, op, second)
    memo[key] = (value, do_verify or (hit is not None and hit[1]))
    return value


def evaluate_gpu_slab(machine, payloads: Sequence[tuple]) -> List[dict]:
    """Evaluate a slab of ``gpu_point`` payloads in a few NumPy passes.

    Parameters
    ----------
    machine:
        The :class:`~repro.core.machine.Machine` the points run on.
    payloads:
        ``(case, config, trials, verify)`` tuples, exactly as built by
        :meth:`~repro.sweep.executor.SweepExecutor.gpu_points`; non-sum
        reductions append a fifth ``op`` element (identifier string).

    Returns
    -------
    list of dict
        One ``{"bandwidth_gbs", "elapsed_seconds", "value"}`` record per
        payload, in submission order — byte-identical (canonical JSON)
        to the records of the scalar ``_task_gpu_point`` loop.
    """
    payloads = list(payloads)
    n = len(payloads)
    metrics().histogram(
        "slab.points_per_batch", boundaries=SLAB_POINT_BUCKETS
    ).observe(n)
    if n == 0:
        return []
    tables = tables_for(machine)

    # -- pass 1: validate in submission order; gather per-point scalars.
    grid = np.empty(n, dtype=np.int64)
    block = np.empty(n, dtype=np.int64)
    v_arr = np.empty(n, dtype=np.int64)
    trip = np.empty(n, dtype=np.int64)
    esize = np.empty(n, dtype=np.int64)
    input_bytes = np.empty(n, dtype=np.float64)
    trials_arr = np.empty(n, dtype=np.float64)
    ceiling = np.empty(n, dtype=np.float64)
    elem_issue = np.empty(n, dtype=np.float64)
    iter_fixed = np.empty(n, dtype=np.float64)
    inflight = np.empty(n, dtype=np.float64)
    combine = np.empty(n, dtype=np.float64)
    scalar_motion = np.empty(n, dtype=np.float64)
    from_clause: List[bool] = [False] * n
    names: List[str] = [""] * n
    ops: List[str] = ["+"] * n
    for i, payload in enumerate(payloads):
        case, config, trials, _verify = payload[:4]
        op = payload[4] if len(payload) > 4 else "+"
        ops[i] = op
        if trials <= 0:
            raise MeasurementError(f"trials must be positive, got {trials}")
        g, b, fc, v, name = _resolve_point(machine, tables, case, config, op)
        _validate_point(tables, case, g, b, required_arrays(op))
        grid[i] = g
        block[i] = b
        v_arr[i] = v
        trip[i] = case.elements // v
        from_clause[i] = fc
        names[i] = name
        erow = tables.elements[case.element_type.name]
        rrow = tables.results[case.result_type.name]
        esize[i] = erow.size
        # Mirrors kernel.input_bytes: dot streams both operands, so its
        # memory term and bandwidth numerator count both arrays.
        input_bytes[i] = case.input_bytes * required_arrays(op)
        trials_arr[i] = trials
        ceiling[i] = erow.ceiling_gbs
        elem_issue[i] = erow.elem_issue
        iter_fixed[i] = erow.iter_fixed
        inflight[i] = erow.inflight_scale
        combine[i] = rrow.combine_cycles
        scalar_motion[i] = rrow.scalar_motion_s

    # -- pass 2: the kernel-time model, vectorized.  Each line mirrors
    # the corresponding scalar expression's operation order exactly.
    cal = tables.calibration
    wpb, bps, active_warps = tables.occupancy_arrays(grid, block)

    # Memory term (Little's law vs the DRAM ceiling).
    raw = tables.warp_size * v_arr * esize
    per_warp = (
        np.minimum(raw.astype(np.float64), cal.warp_inflight_cap_bytes)
        * cal.mlp_scale
        * inflight
    )
    concurrency = (
        active_warps.astype(np.float64) * per_warp / tables.latency_s / 1e9
    )
    bw = np.minimum(ceiling, concurrency)
    memory_time = input_bytes / (bw * 1e9)

    # Issue term.
    v_f = v_arr.astype(np.float64)
    insts_per_iter = tables.loop_overhead + iter_fixed + v_f * elem_issue
    warp_insts = trip.astype(np.float64) * insts_per_iter / tables.warp_size
    issue_time = warp_insts / tables.issue_denom

    # Block-latency term.
    chain_per_iter = tables.latency_cycles + v_f * elem_issue
    total_threads = (grid * block).astype(np.float64)
    avg_iterations = np.maximum(1.0, trip.astype(np.float64) / total_threads)
    block_cycles = (
        tables.block_setup + avg_iterations * chain_per_iter + combine
    )
    slots = tables.sms * bps
    blocks_per_slot = -(-grid // slots)
    block_latency = (
        blocks_per_slot.astype(np.float64) * block_cycles / tables.clock_hz
    )

    # TREE strategy: no global atomics; total = launch + max(body terms).
    body = np.maximum(np.maximum(memory_time, issue_time), block_latency)
    total = tables.launch_s + np.maximum(body, 0.0)

    # Listing 6: per-trial `target update to/from` of the R scalar.
    trial_seconds = scalar_motion + total
    elapsed = trials_arr * trial_seconds
    bandwidth = input_bytes * trials_arr / 1e9 / elapsed

    # -- pass 3: launch trace (submission order, like the serial loop).
    record_launch = machine.trace.record_launch
    for i, payload in enumerate(payloads):
        case = payload[0]
        record_launch(
            KernelLaunchRecord(
                time=0.0,
                name=names[i],
                grid=int(grid[i]),
                block=int(block[i]),
                elements=case.elements,
                from_clause=from_clause[i],
                duration=float(total[i]),
            )
        )

    # -- pass 4: functional values + records.
    strict = machine.config.strict_verify
    records: List[dict] = []
    for i, payload in enumerate(payloads):
        case, verify = payload[0], payload[3]
        do_verify = strict if verify is None else verify
        value = _value_for(
            machine, case, int(grid[i]), int(block[i]), int(v_arr[i]),
            names[i], do_verify, ops[i],
        )
        records.append(
            {
                "bandwidth_gbs": float(bandwidth[i]),
                "elapsed_seconds": float(elapsed[i]),
                "value": value.item(),
            }
        )
    return records
