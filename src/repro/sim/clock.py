"""Virtual clock: monotonically advancing simulated seconds."""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["Clock"]


class Clock:
    """A monotonic virtual clock measured in seconds (float).

    The clock only moves forward; :meth:`advance` models time spent inside
    a modelled activity, :meth:`advance_to` jumps to an absolute event
    completion time (used by the event engine).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by *seconds* (must be >= 0); returns the new time."""
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by negative {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump to absolute time *when* (must not be in the past)."""
        if when < self._now - 1e-18:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = max(self._now, when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(now={self._now!r})"
