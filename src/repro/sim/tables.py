"""Precomputed model lookup tables for the batch-vectorized hot path.

The scalar pipeline re-derives the same per-type calibration constants and
link costs on every point: :func:`~repro.gpu.memory_system.
achievable_bandwidth_gbs` re-reads the efficiency/inflight tables,
:func:`~repro.gpu.perf.estimate_kernel_time` re-reads issue and combine
costs, and every :class:`~repro.openmp.data_env.DeviceDataEnvironment`
re-prices the same one-scalar ``target update`` pair.  None of those
values depend on the parameter point — only on the machine profile
(GPU spec + calibration + link) and the element/result types.

:class:`ModelTables` denormalizes them once per machine profile into flat
per-dtype rows plus machine scalars, memoized process-wide by a content
fingerprint of ``(gpu, calibration, link)``, so the slab evaluator
(:mod:`repro.sim.batch`) prices N points with array arithmetic and table
*lookups* instead of N trips through the calibration objects.  Every
stored value is produced by the exact expressions of the scalar model, in
the same operation order, so downstream arithmetic stays bit-identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..dtypes import SCALAR_TYPES, ScalarType, scalar_type
from ..errors import LaunchError
from ..gpu.calibration import GpuCalibration
from ..gpu.memory_system import warp_inflight_bytes
from ..gpu.strategies import atomic_same_address_ns
from ..hardware.spec import GpuSpec, LinkSpec
from ..sweep.fingerprint import fingerprint

__all__ = ["ElementRow", "ResultRow", "ModelTables", "tables_for"]


@dataclass(frozen=True)
class ElementRow:
    """Per element-type constants of the kernel-time model."""

    size: int
    #: ``efficiency(T) * peak`` — the DRAM ceiling term of the bandwidth min.
    ceiling_gbs: float
    #: warp-instructions per element accumulated.
    elem_issue: float
    #: fixed warp-instructions per loop iteration (sub-word unpack/widen).
    iter_fixed: float
    #: in-flight derating (sector under-utilization / register pressure).
    inflight_scale: float


@dataclass(frozen=True)
class ResultRow:
    """Per result-type constants of the kernel-time model."""

    size: int
    combine_cycles: float
    atomic_ns: float
    #: Listing-6 per-trial scalar motion: ``update_to + update_from`` of
    #: one R scalar over the C2C link (non-UM mode).
    scalar_motion_s: float


class ModelTables:
    """Flat, machine-profile-scoped constants for slab evaluation.

    Built once per (GPU spec, calibration, link) profile and shared by
    every :class:`~repro.core.machine.Machine` with that profile; see
    :func:`tables_for`.
    """

    def __init__(
        self, gpu: GpuSpec, calibration: GpuCalibration, link: LinkSpec
    ):
        self.gpu = gpu
        self.calibration = calibration
        self.link = link

        # -- machine scalars, in the scalar model's exact operation order.
        self.clock_hz = gpu.clock_ghz * 1e9
        self.latency_s = gpu.memory.latency_ns * 1e-9
        self.latency_cycles = gpu.memory.latency_ns * 1e-9 * self.clock_hz
        self.warp_size = gpu.warp_size
        self.sms = gpu.sms
        self.issue_denom = gpu.sms * gpu.issue_rate_ipc * self.clock_hz
        self.launch_s = gpu.kernel_launch_latency_us * 1e-6
        self.loop_overhead = calibration.loop_overhead_insts
        self.block_setup = calibration.block_setup_cycles
        self.max_threads_per_block = gpu.max_threads_per_block
        self.max_warps_per_sm = gpu.max_warps_per_sm
        self.max_blocks_per_sm = gpu.max_blocks_per_sm
        self.device_capacity_bytes = gpu.memory.capacity_bytes
        self.peak_bandwidth_gbs = gpu.memory.peak_bandwidth_gbs

        # -- per-dtype rows.
        self.elements: Dict[str, ElementRow] = {}
        self.results: Dict[str, ResultRow] = {}
        for name, st in SCALAR_TYPES.items():
            self.elements[name] = ElementRow(
                size=st.size,
                ceiling_gbs=(
                    calibration.efficiency_for(st)
                    * gpu.memory.peak_bandwidth_gbs
                ),
                elem_issue=calibration.element_issue_for(st),
                iter_fixed=calibration.iter_fixed_for(st),
                inflight_scale=calibration.inflight_scale_for(st),
            )
            motion_once = (
                link.latency_us * 1e-6 + st.size / (link.bandwidth_gbs * 1e9)
            )
            self.results[name] = ResultRow(
                size=st.size,
                combine_cycles=calibration.combine_cycles_for(st),
                atomic_ns=atomic_same_address_ns(st),
                scalar_motion_s=motion_once + motion_once,
            )

    # -- vectorized building blocks ---------------------------------------
    def element_row(self, element_type) -> ElementRow:
        return self.elements[scalar_type(element_type).name]

    def result_row(self, result_type) -> ResultRow:
        return self.results[scalar_type(result_type).name]

    def inflight_per_warp(self, element_type, v: np.ndarray) -> np.ndarray:
        """Vectorized :func:`~repro.gpu.memory_system.warp_inflight_bytes`.

        Mirrors the scalar expression term by term: ``warp * V * size``
        clamped to the LSU cap, scaled by pipelining slack, then derated
        per element type.
        """
        row = self.element_row(element_type)
        raw = (self.warp_size * v * row.size).astype(np.float64)
        capped = np.minimum(raw, self.calibration.warp_inflight_cap_bytes)
        return capped * self.calibration.mlp_scale * row.inflight_scale

    def occupancy_arrays(
        self, grid: np.ndarray, block: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized residency: ``(warps_per_block, blocks_per_sm,
        active_warps)`` for already-validated launch geometry.

        Raises
        ------
        LaunchError
            With the scalar occupancy calculator's message when a block
            needs more warps than an SM can hold.
        """
        wpb = -(-block // self.warp_size)
        over = wpb > self.max_warps_per_sm
        if np.any(over):
            i = int(np.argmax(over))
            raise LaunchError(
                f"a {int(block[i])}-thread block needs {int(wpb[i])} warps, "
                f"more than the {self.max_warps_per_sm} an SM can hold"
            )
        bps = np.minimum(self.max_blocks_per_sm, self.max_warps_per_sm // wpb)
        capacity = self.sms * bps
        active_blocks = np.minimum(grid, capacity)
        return wpb, bps, active_blocks * wpb

    # -- consistency check -------------------------------------------------
    def verify_against_scalar(self, element_type, v: int) -> None:
        """Assert one table-driven in-flight value matches the scalar path.

        Used by tests; a drifted table is a correctness bug, not a perf
        bug, because the slab path must stay byte-identical.
        """
        st: ScalarType = scalar_type(element_type)
        scalar = warp_inflight_bytes(self.gpu, v, st, self.calibration)
        vector = float(
            self.inflight_per_warp(st, np.asarray([v], dtype=np.int64))[0]
        )
        if scalar != vector:  # pragma: no cover - guards future edits
            raise AssertionError(
                f"table drift for {st.name} v={v}: {vector!r} != {scalar!r}"
            )


_TABLES_LOCK = threading.Lock()
_TABLES: Dict[str, ModelTables] = {}


def tables_for(machine) -> ModelTables:
    """The memoized :class:`ModelTables` for *machine*'s hardware profile.

    Keyed by a content fingerprint of ``(gpu, calibration, link)`` so
    machines sharing a profile (every worker process rebuilt from one
    :class:`~repro.sweep.executor.MachineSpec`, every service handler)
    share one table set; an instance-level cache makes the repeat lookup
    a single attribute read.
    """
    cached = getattr(machine, "_model_tables", None)
    if cached is not None:
        return cached
    key = fingerprint(
        {
            "gpu": machine.system.gpu,
            "calibration": machine.calibration,
            "link": machine.system.link,
        }
    )
    with _TABLES_LOCK:
        tables = _TABLES.get(key)
        if tables is None:
            tables = ModelTables(
                machine.system.gpu, machine.calibration, machine.system.link
            )
            _TABLES[key] = tables
    machine._model_tables = tables
    return tables
