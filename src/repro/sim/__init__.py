"""Deterministic simulation core: virtual clock, event engine, trace.

All timing in the library flows through :class:`~repro.sim.clock.Clock`, a
virtual nanosecond counter — nothing depends on wall-clock time, so every
measurement is reproducible bit-for-bit.  The discrete-event
:class:`~repro.sim.engine.Engine` sequences overlapping activities
(CPU+GPU co-execution, page migration), and :class:`~repro.sim.trace.Trace`
records kernel launches and page migrations the way the paper uses a
profiler to inspect grid sizes.
"""

from .clock import Clock
from .engine import Engine, Event
from .trace import Trace, KernelLaunchRecord, MigrationRecord, RemoteAccessRecord

__all__ = [
    "Clock",
    "Engine",
    "Event",
    "Trace",
    "KernelLaunchRecord",
    "MigrationRecord",
    "RemoteAccessRecord",
    "ModelTables",
    "evaluate_gpu_slab",
    "tables_for",
]

_LAZY = {
    "ModelTables": "tables",
    "evaluate_gpu_slab": "batch",
    "tables_for": "tables",
}


def __getattr__(name):
    # The slab evaluator (:mod:`.batch`) and its model tables reach into
    # core/gpu/sweep layers that themselves import :mod:`.trace` from
    # this package, so they load lazily to keep import order acyclic.
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
