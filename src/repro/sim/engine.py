"""A small deterministic discrete-event engine.

The co-execution model (paper Listing 7) overlaps a GPU kernel, a host
worksharing loop, and (in unified-memory mode) page migrations.  Rather
than hand-computing ``max()`` of segment times everywhere, activities are
scheduled as events and the engine advances the virtual clock through
them; handlers may schedule further events (e.g. a page fault scheduling a
migration completion).

Determinism: events fire ordered by (time, sequence-number), so insertion
order breaks ties reproducibly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError
from ..telemetry.state import span as tele_span
from .clock import Clock

__all__ = ["Event", "Engine"]


@dataclass(order=True)
class Event:
    """A scheduled occurrence.  Ordering key: (time, seq)."""

    time: float
    seq: int
    handler: Callable[["Engine"], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    _engine: "Optional[Engine]" = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        # Keep the owning engine's live count exact while the event is
        # still queued; once popped (or never scheduled) there is nothing
        # to adjust.
        if self._engine is not None:
            self._engine._live -= 1
            self._engine = None


class Engine:
    """Event queue bound to a :class:`~repro.sim.clock.Clock`."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or Clock()
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._fired = 0
        self._live = 0

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._live

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def at(self, when: float, handler: Callable[["Engine"], None], label: str = "") -> Event:
        """Schedule *handler* at absolute time *when*."""
        if when < self.clock.now - 1e-18:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.clock.now}"
            )
        event = Event(time=max(when, self.clock.now), seq=next(self._seq),
                      handler=handler, label=label, _engine=self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def after(self, delay: float, handler: Callable[["Engine"], None], label: str = "") -> Event:
        """Schedule *handler* ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.clock.now + delay, handler, label)

    def _peek_live(self) -> Optional[Event]:
        """Head of the queue with cancelled events lazily discarded."""
        while self._queue:
            head = self._queue[0]
            if not head.cancelled:
                return head
            heapq.heappop(self._queue)
        return None

    def step(self) -> Optional[Event]:
        """Fire the next event; returns it, or ``None`` if the queue is empty."""
        event = self._peek_live()
        if event is None:
            return None
        heapq.heappop(self._queue)
        event._engine = None
        self._live -= 1
        self.clock.advance_to(event.time)
        self._fired += 1
        event.handler(self)
        return event

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally stopping at time *until*).

        Returns the clock time when the run stopped.  ``max_events`` guards
        against runaway self-scheduling handlers.
        """
        with tele_span("engine.run", category="sim") as sp:
            fired = 0
            while True:
                head = self._peek_live()
                if head is None:
                    break
                if until is not None and head.time > until:
                    self.clock.advance_to(until)
                    sp.set(events=fired, sim_seconds=self.clock.now)
                    return self.clock.now
                if fired >= max_events:
                    raise SimulationError(
                        f"engine exceeded max_events={max_events}; "
                        "likely a self-scheduling loop"
                    )
                self.step()
                fired += 1
            if until is not None:
                self.clock.advance_to(until)
            sp.set(events=fired, sim_seconds=self.clock.now)
            return self.clock.now
