"""Execution trace: the library's built-in "profiler".

The paper inspects runtime behaviour with a profiler ("Profiling the
OpenMP program reveals that the grid sizes of the GPU reduction kernels
match the team sizes specified by the num_teams clause...", §III.C).  The
trace records the same observables — kernel launches with their geometry,
page migrations, and coherent remote accesses — so tests and benchmarks can
make the paper's profiling claims executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "KernelLaunchRecord",
    "MigrationRecord",
    "RemoteAccessRecord",
    "Trace",
]


@dataclass(frozen=True)
class KernelLaunchRecord:
    """One device kernel launch."""

    time: float
    name: str
    grid: int
    block: int
    elements: int
    from_clause: bool
    duration: float


@dataclass(frozen=True)
class MigrationRecord:
    """A page-migration burst between memories."""

    time: float
    src: str
    dst: str
    nbytes: int
    npages: int
    duration: float
    reason: str  # "fault", "prefetch", "access-counter"


@dataclass(frozen=True)
class RemoteAccessRecord:
    """Coherent remote (non-migrating) access over the C2C link."""

    time: float
    accessor: str  # "cpu" or "gpu"
    nbytes: int
    duration: float


class Trace:
    """Append-only event log with typed accessors."""

    def __init__(self) -> None:
        self.kernel_launches: List[KernelLaunchRecord] = []
        self.migrations: List[MigrationRecord] = []
        self.remote_accesses: List[RemoteAccessRecord] = []

    # -- recording ----------------------------------------------------------
    def record_launch(self, record: KernelLaunchRecord) -> None:
        self.kernel_launches.append(record)

    def record_migration(self, record: MigrationRecord) -> None:
        self.migrations.append(record)

    def record_remote_access(self, record: RemoteAccessRecord) -> None:
        self.remote_accesses.append(record)

    # -- queries --------------------------------------------------------------
    @property
    def n_launches(self) -> int:
        return len(self.kernel_launches)

    def last_launch(self) -> Optional[KernelLaunchRecord]:
        return self.kernel_launches[-1] if self.kernel_launches else None

    def grid_sizes(self) -> List[int]:
        """Grid size per launch, in launch order (the paper's observable)."""
        return [r.grid for r in self.kernel_launches]

    def migrated_bytes(self, src: Optional[str] = None, dst: Optional[str] = None) -> int:
        """Total bytes migrated, optionally filtered by endpoint names."""
        total = 0
        for r in self.migrations:
            if src is not None and r.src != src:
                continue
            if dst is not None and r.dst != dst:
                continue
            total += r.nbytes
        return total

    def clear(self) -> None:
        self.kernel_launches.clear()
        self.migrations.clear()
        self.remote_accesses.clear()

    def summary(self) -> str:
        """One-line counts summary."""
        return (
            f"{len(self.kernel_launches)} launches, "
            f"{len(self.migrations)} migrations "
            f"({self.migrated_bytes()} B), "
            f"{len(self.remote_accesses)} remote accesses"
        )
