"""Execution trace: the library's built-in "profiler".

The paper inspects runtime behaviour with a profiler ("Profiling the
OpenMP program reveals that the grid sizes of the GPU reduction kernels
match the team sizes specified by the num_teams clause...", §III.C).  The
trace records the same observables — kernel launches with their geometry,
page migrations, and coherent remote accesses — so tests and benchmarks can
make the paper's profiling claims executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..telemetry.state import get_telemetry
from ..util.units import format_bytes

__all__ = [
    "KernelLaunchRecord",
    "MigrationRecord",
    "RemoteAccessRecord",
    "Trace",
]


@dataclass(frozen=True)
class KernelLaunchRecord:
    """One device kernel launch."""

    time: float
    name: str
    grid: int
    block: int
    elements: int
    from_clause: bool
    duration: float


@dataclass(frozen=True)
class MigrationRecord:
    """A page-migration burst between memories."""

    time: float
    src: str
    dst: str
    nbytes: int
    npages: int
    duration: float
    reason: str  # "fault", "prefetch", "access-counter"


@dataclass(frozen=True)
class RemoteAccessRecord:
    """Coherent remote (non-migrating) access over the C2C link."""

    time: float
    accessor: str  # "cpu" or "gpu"
    nbytes: int
    duration: float


#: Default per-list retention window.  Far above anything one paper
#: experiment records, far below what a million-point streamed job
#: would otherwise accumulate in the coordinator.
DEFAULT_RETENTION = 8192


class Trace:
    """Append-only event log with typed accessors.

    Retention is bounded: each list keeps at least the newest
    ``retention`` records (eviction drops the oldest in blocks, so up to
    ``2 * retention`` may be resident).  The machine-scoped trace would
    otherwise grow without bound under :mod:`repro.jobs` streamed sweeps
    — the coordinator's RSS must stay independent of point count.
    ``n_launches`` counts every launch ever recorded; the windowed
    queries (``grid_sizes``, ``migrated_bytes``, ``to_events``) see the
    retained tail, which covers any single experiment.
    """

    def __init__(self, retention: int = DEFAULT_RETENTION) -> None:
        self.retention = max(1, int(retention))
        self.kernel_launches: List[KernelLaunchRecord] = []
        self.migrations: List[MigrationRecord] = []
        self.remote_accesses: List[RemoteAccessRecord] = []
        self._dropped_launches = 0
        self._dropped_migrations = 0
        self._dropped_remote_accesses = 0

    def _evict(self, records: List[Any]) -> int:
        """Drop the oldest half once a list doubles past the window."""
        if len(records) >= 2 * self.retention:
            drop = len(records) - self.retention
            del records[:drop]
            return drop
        return 0

    # -- recording ----------------------------------------------------------
    # Each record_* call also mirrors the record into the global telemetry
    # metrics registry when telemetry is enabled, so the aggregates the
    # exporters report (launches by kernel, bytes migrated by reason) stay
    # consistent with this trace by construction.
    def record_launch(self, record: KernelLaunchRecord) -> None:
        self.kernel_launches.append(record)
        self._dropped_launches += self._evict(self.kernel_launches)
        telemetry = get_telemetry()
        if telemetry.enabled:
            reg = telemetry.registry
            reg.counter("sim.kernel_launches", kernel=record.name).add(1)
            reg.histogram("sim.kernel_seconds").observe(record.duration)

    def record_migration(self, record: MigrationRecord) -> None:
        self.migrations.append(record)
        self._dropped_migrations += self._evict(self.migrations)
        telemetry = get_telemetry()
        if telemetry.enabled:
            reg = telemetry.registry
            reg.counter("sim.migrated_bytes", reason=record.reason).add(
                record.nbytes
            )
            reg.counter("sim.migrations", reason=record.reason).add(1)

    def record_remote_access(self, record: RemoteAccessRecord) -> None:
        self.remote_accesses.append(record)
        self._dropped_remote_accesses += self._evict(self.remote_accesses)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.counter(
                "sim.remote_access_bytes", accessor=record.accessor
            ).add(record.nbytes)

    # -- queries --------------------------------------------------------------
    @property
    def n_launches(self) -> int:
        """Every launch ever recorded (including evicted ones)."""
        return self._dropped_launches + len(self.kernel_launches)

    def last_launch(self) -> Optional[KernelLaunchRecord]:
        return self.kernel_launches[-1] if self.kernel_launches else None

    def grid_sizes(self) -> List[int]:
        """Grid size per launch, in launch order (the paper's observable)."""
        return [r.grid for r in self.kernel_launches]

    def migrated_bytes(self, src: Optional[str] = None, dst: Optional[str] = None) -> int:
        """Total bytes migrated, optionally filtered by endpoint names."""
        total = 0
        for r in self.migrations:
            if src is not None and r.src != src:
                continue
            if dst is not None and r.dst != dst:
                continue
            total += r.nbytes
        return total

    def clear(self) -> None:
        self.kernel_launches.clear()
        self.migrations.clear()
        self.remote_accesses.clear()
        self._dropped_launches = 0
        self._dropped_migrations = 0
        self._dropped_remote_accesses = 0

    def summary(self) -> str:
        """One-line counts summary (sizes human-readable via util.units)."""
        return (
            f"{len(self.kernel_launches)} launches, "
            f"{len(self.migrations)} migrations "
            f"({format_bytes(self.migrated_bytes())}), "
            f"{len(self.remote_accesses)} remote accesses"
        )

    def to_events(self) -> List[Dict[str, Any]]:
        """Chrome-trace ``trace_event`` dicts for the simulated lanes.

        This is the schema the telemetry exporter consumes
        (:func:`repro.telemetry.chrome_trace` merges these with the
        wall-clock span events): complete ("X") events under the sim
        process (pid 0), one lane per modeled resource —

        * tid 1: GPU SM groups (kernel launches, grid/block in ``args``),
        * tid 2: the C2C link (page-migration bursts, by reason),
        * tid 3: CPU coherent remote reads.

        Timestamps are *simulated* seconds (exported as microseconds).
        Records that share a recorded sim time — every measurement runs
        its own engine from t = 0 — are packed end-to-end within their
        lane so the timeline stays readable; each event's raw recorded
        time is preserved in ``args["sim_time"]``.
        """
        events: List[Dict[str, Any]] = []
        lanes = [
            ("gpu-sm-groups", 1, "sim.gpu", self.kernel_launches),
            ("c2c-link", 2, "sim.mem", self.migrations),
            ("cpu-remote-reads", 3, "sim.cpu", self.remote_accesses),
        ]
        for lane_name, tid, category, records in lanes:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": lane_name},
                }
            )
            cursor = 0.0
            for record in records:
                start = max(cursor, record.time)
                if isinstance(record, KernelLaunchRecord):
                    name = record.name
                    args: Dict[str, Any] = {
                        "grid": record.grid,
                        "block": record.block,
                        "elements": record.elements,
                        "from_clause": record.from_clause,
                    }
                elif isinstance(record, MigrationRecord):
                    name = f"migrate {record.src}->{record.dst} ({record.reason})"
                    args = {
                        "nbytes": record.nbytes,
                        "npages": record.npages,
                        "reason": record.reason,
                    }
                else:
                    name = f"remote read ({record.accessor})"
                    args = {"nbytes": record.nbytes,
                            "accessor": record.accessor}
                args["sim_time"] = record.time
                events.append(
                    {
                        "name": name,
                        "cat": category,
                        "ph": "X",
                        "ts": start * 1e6,
                        "dur": record.duration * 1e6,
                        "pid": 0,
                        "tid": tid,
                        "args": args,
                    }
                )
                cursor = start + record.duration
        return events
