"""Parallel, cache-aware experiment execution (the sweep subsystem).

The paper is a parameter-sweep study: Figures 1a-1d alone cover
4 cases x 10 team counts x 6 V values, and the co-execution figures sweep
an 11-point CPU-partition grid per case on top.  This package turns the
sweep driver itself into engineered infrastructure:

* :class:`~repro.sweep.executor.SweepExecutor` — fans sweep points out
  over a process pool with deterministic collation (``workers=1`` is the
  exact serial seed path);
* :mod:`~repro.sweep.result_cache` — persistent JSON result cache keyed
  by a fingerprint of (machine calibration + config, experiment kind,
  parameter point, trials);
* :mod:`~repro.sweep.fingerprint` — the content-addressing scheme (a
  calibration change invalidates every dependent entry);
* :mod:`~repro.sweep.instrumentation` — per-stage wall time, hit/miss
  counters and points/sec, surfaced by the report and the reproduction
  driver.

The compilation cache lives one layer down, in
:mod:`repro.compiler.cache`, and is shared by every sweep point.
"""

from .executor import (
    CoexecRequest,
    MachineSpec,
    SweepExecutor,
    WORKERS_ENV,
    resolve_workers,
)
from .fingerprint import CACHE_VERSION, canonical_json, fingerprint
from .instrumentation import StageStats, SweepStats
from .result_cache import ResultCache, default_cache_dir, open_result_cache

__all__ = [
    "CACHE_VERSION",
    "CoexecRequest",
    "MachineSpec",
    "ResultCache",
    "StageStats",
    "SweepExecutor",
    "SweepStats",
    "WORKERS_ENV",
    "canonical_json",
    "default_cache_dir",
    "fingerprint",
    "open_result_cache",
    "resolve_workers",
]
