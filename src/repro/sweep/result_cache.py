"""Persistent JSON result cache for sweep points.

Each entry is one file, ``<kind>-<digest>.json``, under a configurable
cache directory; the digest is the :mod:`~repro.sweep.fingerprint` of
(cache version, machine, experiment kind, parameter point, trials).  A
calibration or configuration change therefore misses cleanly — no stale
reads, no manual bookkeeping.  Explicit invalidation: ``--no-cache``
bypasses the cache entirely, :meth:`ResultCache.clear` wipes the
directory, and bumping :data:`~repro.sweep.fingerprint.CACHE_VERSION`
abandons every old entry.

An in-memory layer fronts the files so repeated stages inside one run
(e.g. ``full_report`` regenerating figures the driver already produced)
hit without touching disk.  The cache **self-heals**: entries are
written wrapped with a SHA-256 checksum of their payload, and a read
whose bytes fail to parse *or* whose payload no longer matches its
checksum is treated as a miss and the file is *quarantined* (moved into
a ``quarantine/`` subdirectory for post-mortem, unlinked if even that
fails) so one bad file cannot poison every later run.  Legacy unwrapped
entries are still readable.  Writes are crash-safe: a temp file in the
same directory is fsynced and ``os.replace``d into place, so readers —
including concurrent writers racing on the same key, which at worst
replace one complete entry with another — only ever observe complete
entries.  A lock makes the in-memory layer and counters safe under the
service's concurrent handlers.

Fault injection (:mod:`repro.faults`): ``cache.get`` can corrupt the
on-disk bytes before a read (exercising the checksum path) or simulate
``EIO``; ``cache.put`` can tear a write (bypassing the atomic path, the
pre-atomic crash shape) or drop it.  All no-ops unless a plan is active.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from ..faults.injector import fire

__all__ = ["ResultCache", "default_cache_dir", "open_result_cache"]

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweep``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweep"


def _value_digest(value: Any) -> str:
    """SHA-256 over a canonical encoding of *value*."""
    blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """File-backed key/value store for JSON-serializable sweep results."""

    def __init__(self, directory: "Path | str | None" = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self._memory: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.checksum_failures = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside for post-mortem (unlink as fallback)."""
        try:
            qdir = self.directory / QUARANTINE_DIR
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            with self._lock:
                self.quarantined += 1
            return
        except OSError:
            pass
        try:
            os.unlink(path)
        except OSError:
            pass

    def _evict(self, path: Path) -> None:
        self._quarantine(path)
        with self._lock:
            self.misses += 1
            self.evictions += 1

    def get(self, key: str) -> Optional[Any]:
        """The cached value for *key*, or ``None`` on a miss.

        A corrupt or truncated on-disk entry — bad JSON, or a checksum
        that no longer matches its payload — is quarantined and counts
        as a miss; never raises toward the caller.
        """
        with self._lock:
            if key in self._memory:
                self.hits += 1
                return self._memory[key]
        path = self._path(key)
        decision = fire("cache.get")
        if decision is not None:
            if decision.mode == "corrupt":
                # Garble the real file so the normal read path below
                # exercises detection exactly as a stray write would.
                try:
                    with open(path, "r+b") as fh:
                        fh.seek(0)
                        fh.write(b'{"sha256": "bogus", "val')
                        fh.truncate()
                except OSError:
                    pass
            elif decision.mode == "eio":
                with self._lock:
                    self.misses += 1
                return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except ValueError:
            # Truncated/corrupt JSON: a crash or power loss mid-write
            # predating the atomic-replace path, or stray bytes from
            # another tool.
            self._evict(path)
            return None
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        if isinstance(doc, dict) and set(doc) == {"sha256", "value"}:
            value = doc["value"]
            if doc["sha256"] != _value_digest(value):
                with self._lock:
                    self.checksum_failures += 1
                self._evict(path)
                return None
        else:
            # Legacy unwrapped entry (pre-checksum cache versions).
            value = doc
        with self._lock:
            self._memory[key] = value
            self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* (crash-safe: fsync + atomic replace).

        The on-disk form wraps the value with its checksum so
        :meth:`get` can verify integrity end to end.
        """
        decision = fire("cache.put")
        if decision is not None:
            if decision.mode == "partial":
                # A torn write straight at the final path — the shape a
                # crash would leave without the tempfile+rename dance.
                try:
                    self.directory.mkdir(parents=True, exist_ok=True)
                    with open(self._path(key), "w", encoding="utf-8") as fh:
                        fh.write('{"sha256": "')
                except OSError:
                    pass
                return
            if decision.mode == "eio":
                return
        with self._lock:
            self._memory[key] = value
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(self.directory)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump({"sha256": _value_digest(value), "value": value}, fh)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            with self._lock:
                self.stores += 1
        except OSError:
            # Read-only or full filesystem: keep the in-memory copy and
            # carry on — caching is an optimization, never a requirement.
            pass

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        with self._lock:
            self._memory.clear()
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        """Number of persisted entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def describe(self) -> str:
        extras = ""
        if self.evictions:
            extras += f", {self.evictions} corrupt entries evicted"
        if self.checksum_failures:
            extras += f", {self.checksum_failures} checksum failures"
        if self.quarantined:
            extras += f", {self.quarantined} quarantined"
        return (
            f"result cache at {self.directory} "
            f"({self.entry_count()} entries; this process: "
            f"{self.hits} hits, {self.misses} misses, {self.stores} stores"
            f"{extras})"
        )


def open_result_cache(
    directory: "Path | str | None" = None, enabled: bool = True
) -> Optional[ResultCache]:
    """A :class:`ResultCache` honouring the enable switch (``None`` if off)."""
    if not enabled:
        return None
    return ResultCache(directory)
