"""Persistent JSON result cache for sweep points.

Each entry is one file, ``<kind>-<digest>.json``, under a configurable
cache directory; the digest is the :mod:`~repro.sweep.fingerprint` of
(cache version, machine, experiment kind, parameter point, trials).  A
calibration or configuration change therefore misses cleanly — no stale
reads, no manual bookkeeping.  Explicit invalidation: ``--no-cache``
bypasses the cache entirely, :meth:`ResultCache.clear` wipes the
directory, and bumping :data:`~repro.sweep.fingerprint.CACHE_VERSION`
abandons every old entry.

An in-memory layer fronts the files so repeated stages inside one run
(e.g. ``full_report`` regenerating figures the driver already produced)
hit without touching disk.  Corrupt or truncated entries (a crash or
power loss mid-write predating the atomic-replace path, or stray bytes
from another tool) are treated as misses and *evicted*, so one bad file
cannot poison every later run.  Writes are crash-safe: a temp file in
the same directory is fsynced and ``os.replace``d into place, so readers
only ever observe complete entries.  A lock makes the in-memory layer
and counters safe under the service's concurrent handlers.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "default_cache_dir", "open_result_cache"]

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweep``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweep"


class ResultCache:
    """File-backed key/value store for JSON-serializable sweep results."""

    def __init__(self, directory: "Path | str | None" = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self._memory: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """The cached value for *key*, or ``None`` on a miss.

        A corrupt or truncated on-disk entry is evicted (unlinked) and
        counts as a miss — never raises toward the caller.
        """
        with self._lock:
            if key in self._memory:
                self.hits += 1
                return self._memory[key]
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                value = json.load(fh)
        except ValueError:
            # Truncated/corrupt JSON: evict the bad file so it cannot
            # shadow a future good write or re-fail every reader.
            try:
                os.unlink(path)
            except OSError:
                pass
            with self._lock:
                self.misses += 1
                self.evictions += 1
            return None
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self._memory[key] = value
            self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* (crash-safe: fsync + atomic replace)."""
        with self._lock:
            self._memory[key] = value
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(self.directory)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(value, fh)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            with self._lock:
                self.stores += 1
        except OSError:
            # Read-only or full filesystem: keep the in-memory copy and
            # carry on — caching is an optimization, never a requirement.
            pass

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        with self._lock:
            self._memory.clear()
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        """Number of persisted entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def describe(self) -> str:
        evicted = (
            f", {self.evictions} corrupt entries evicted"
            if self.evictions else ""
        )
        return (
            f"result cache at {self.directory} "
            f"({self.entry_count()} entries; this process: "
            f"{self.hits} hits, {self.misses} misses, {self.stores} stores"
            f"{evicted})"
        )


def open_result_cache(
    directory: "Path | str | None" = None, enabled: bool = True
) -> Optional[ResultCache]:
    """A :class:`ResultCache` honouring the enable switch (``None`` if off)."""
    if not enabled:
        return None
    return ResultCache(directory)
