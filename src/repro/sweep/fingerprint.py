"""Content fingerprints for cache keys.

A fingerprint is the SHA-256 of a canonical JSON rendering of the inputs
that determine an experiment's outcome: the machine (hardware spec +
calibration + the semantic part of the run configuration), the experiment
kind, and the parameter point.  Anything that changes any of those —
notably a calibration re-fit — changes the key, which is the cache's
invalidation story.  :data:`CACHE_VERSION` is folded into every key so a
format or semantics bump invalidates wholesale.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["CACHE_VERSION", "canonical_json", "fingerprint", "machine_fingerprint_data"]

#: Bump to invalidate every previously cached result (schema/semantics).
CACHE_VERSION = 1


def _jsonable(obj: Any) -> Any:
    """Reduce *obj* to JSON-serializable primitives, deterministically."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; avoids locale/precision surprises.
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": _jsonable(obj.value)}
    if isinstance(obj, np.generic):
        return {"__np__": obj.dtype.name, "value": _jsonable(obj.item())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: _jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    # ScalarType and friends render stably through str().
    return {"__str__": type(obj).__name__, "value": str(obj)}


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for *obj* (sorted keys, no whitespace)."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of *obj*."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def machine_fingerprint_data(machine) -> dict:
    """The machine-derived part of a cache key.

    Only the *semantic* configuration fields participate — the seed, the
    functional cap and the verification mode change results; the sweep
    worker count and cache location must not.
    """
    cfg = machine.config
    return {
        "system": machine.system,
        "calibration": machine.calibration,
        "config": {
            "seed": cfg.seed,
            "functional_elements_cap": cfg.functional_elements_cap,
            "strict_verify": cfg.strict_verify,
        },
    }
