"""The parallel, cache-aware sweep executor.

All sweep entry points (`sweep_parameters`, Table 1, the co-execution
figures, the CLI and ``examples/reproduce_paper.py``) funnel their
parameter points through a :class:`SweepExecutor`, which

1. checks each point against a persistent :class:`~repro.sweep.
   result_cache.ResultCache` (keyed by machine fingerprint + experiment
   kind + parameter point + trials),
2. fans the misses out over a :class:`~repro.faults.supervisor.
   SupervisedWorkerPool` (``workers`` from the argument, the
   ``REPRO_SWEEP_WORKERS`` environment variable, or :attr:`~repro.
   config.ReproConfig.sweep_workers`; ``workers=1`` with no task
   timeout preserves the exact serial ordering and results) — the pool
   heartbeats its workers, restarts crashed or hung ones with bounded
   re-execution, verifies result checksums, and quarantines poison
   tasks as explicit failure records; graceful fallback to the serial
   path when a pool cannot be used — and
3. collates results deterministically in submission order, recording
   per-stage wall time and hit/miss/failed counters in :class:`~repro.
   sweep.instrumentation.SweepStats`.  Failure records are counted but
   never cached.

A global per-task timeout (``--timeout`` / ``REPRO_SWEEP_TIMEOUT`` /
:attr:`~repro.config.ReproConfig.sweep_task_timeout_s`) records a
too-slow point as failed instead of aborting the sweep; setting it
routes even single-worker runs through the pool, since enforcing a
deadline requires process isolation.

Worker processes rebuild the machine from a picklable
:class:`MachineSpec`; because every measurement is a pure function of
(machine spec, parameter point), parallel results are bit-identical to
serial ones.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config import ReproConfig
from ..core.cases import Case
from ..core.coexec import (
    AllocationSite,
    CoExecMeasurement,
    CoExecSweep,
    CPU_PART_GRID,
    measure_coexec_sweep,
)
from ..core.machine import Machine
from ..core.optimized import KernelConfig
from ..core.timing import TRIALS, measure_gpu_reduction
from ..errors import SpecError
from ..telemetry.state import get_telemetry, metrics, span as tele_span
from .fingerprint import CACHE_VERSION, fingerprint, machine_fingerprint_data
from .instrumentation import SweepStats
from .result_cache import ResultCache

__all__ = [
    "TIMEOUT_ENV",
    "WORKERS_ENV",
    "MachineSpec",
    "CoexecRequest",
    "SweepExecutor",
    "resolve_task_timeout",
    "resolve_workers",
]

#: Environment variable overriding the worker count (int, or ``auto``).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment variable setting the per-task timeout (seconds).
TIMEOUT_ENV = "REPRO_SWEEP_TIMEOUT"

#: Bound on the per-executor payload -> cache-key memo.
_MEMO_KEY_CAP = 65536

#: Ceiling on points per shared-memory slab chunk.  Bounds a worker's
#: per-task latency so the supervisor's heartbeat hang detection keeps
#: meaning, and bounds segment size.
_SLAB_CHUNK_CAP = 65536

#: Default chunk width for :meth:`SweepExecutor.run_streaming` — the
#: coordinator's peak resident set is O(this), never O(total points).
DEFAULT_STREAM_CHUNK = 1024


def resolve_workers(workers: "int | str | None", config: ReproConfig) -> int:
    """Resolve the worker count: argument > env var > config > 1 (serial)."""
    source = "workers"
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            workers = env
            source = WORKERS_ENV
        elif config.sweep_workers is not None:
            workers = config.sweep_workers
        else:
            return 1
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(workers)
        except ValueError:
            raise SpecError(
                f"{source} must be an integer or 'auto', got {workers!r}"
            ) from None
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


def resolve_task_timeout(
    timeout: "float | str | None", config: ReproConfig
) -> Optional[float]:
    """Resolve the per-task timeout: argument > env var > config > off.

    Values <= 0 disable the deadline (so ``--timeout 0`` turns an
    environment-supplied timeout back off).
    """
    source = "timeout"
    if timeout is None:
        env = os.environ.get(TIMEOUT_ENV)
        if env:
            timeout = env
            source = TIMEOUT_ENV
        elif config.sweep_task_timeout_s is not None:
            timeout = config.sweep_task_timeout_s
        else:
            return None
    if isinstance(timeout, str):
        try:
            timeout = float(timeout)
        except ValueError:
            raise SpecError(
                f"{source} must be a number of seconds, got {timeout!r}"
            ) from None
    if timeout <= 0:
        return None
    return float(timeout)


@dataclass(frozen=True)
class MachineSpec:
    """Picklable recipe to rebuild a :class:`Machine` in a worker process."""

    system: Any
    calibration: Any
    config: ReproConfig
    icvs: Any

    @classmethod
    def of(cls, machine: Machine) -> "MachineSpec":
        return cls(
            system=machine.system,
            calibration=machine.calibration,
            config=machine.config,
            icvs=machine.runtime.icvs,
        )

    def build(self) -> Machine:
        return Machine(
            system=self.system,
            calibration=self.calibration,
            config=self.config,
            icvs=self.icvs,
        )


@dataclass(frozen=True)
class CoexecRequest:
    """One cacheable co-execution sweep (a full p grid for one case)."""

    case: Case
    site: AllocationSite
    config: Optional[KernelConfig] = None
    p_grid: Tuple[float, ...] = CPU_PART_GRID
    trials: int = TRIALS
    verify: Optional[bool] = None
    unified_memory: bool = True
    access_counter_threshold: Optional[int] = None


# --------------------------------------------------------------------------
# Task functions.  Module-level (picklable) so worker processes can run
# them; each returns a JSON-serializable dict, which is also what the
# result cache stores.
# --------------------------------------------------------------------------


def _task_gpu_point(machine: Machine, payload: tuple) -> dict:
    # Sum payloads stay 4-tuples (their cache fingerprints predate the op
    # axis); non-sum ops ride in a 5th element.
    case, config, trials, verify = payload[:4]
    op = payload[4] if len(payload) > 4 else "+"
    m = measure_gpu_reduction(machine, case, config, trials=trials,
                              verify=verify, op=op)
    return {
        "bandwidth_gbs": m.bandwidth_gbs,
        "elapsed_seconds": m.elapsed_seconds,
        "value": m.value.item(),
    }


def _task_coexec_sweep(machine: Machine, payload: tuple) -> dict:
    request: CoexecRequest = payload[0]
    sweep = measure_coexec_sweep(
        machine,
        request.case,
        request.site,
        request.config,
        p_grid=request.p_grid,
        trials=request.trials,
        verify=request.verify,
        unified_memory=request.unified_memory,
        access_counter_threshold=request.access_counter_threshold,
    )
    return {
        "measurements": [
            {
                "cpu_part": m.cpu_part,
                "elapsed_seconds": m.elapsed_seconds,
                "bandwidth_gbs": m.bandwidth_gbs,
                "gpu_seconds_steady": m.gpu_seconds_steady,
                "cpu_seconds_steady": m.cpu_seconds_steady,
                "migration_seconds": m.migration_seconds,
                "value": m.value.item(),
            }
            for m in sweep.measurements
        ]
    }


def _task_gpu_slab(machine: Machine, payload: tuple) -> dict:
    """Evaluate one shared-memory slab chunk (worker side).

    The payload is the tiny pickled request header; points travel in the
    shared-memory segment it names.  The ``slab.evaluate`` fault point
    mirrors ``worker.task``'s modes, with ``wrong_result`` corrupting
    the response *buffer* after its digest is taken — so injected
    corruption is always detectable at collation, exactly like the
    supervisor's checksum-then-mangle discipline for pickled records.
    """
    # Imported lazily: repro.sim.batch reaches repro.sweep through the
    # model tables' fingerprinting, so a module-level import would cycle.
    from ..faults.injector import fire
    from ..sim.batch import evaluate_gpu_slab
    from . import shm

    header = payload[0]
    mangle = False
    decision = fire("slab.evaluate")
    if decision is not None:
        if decision.mode == "crash":
            os._exit(3)
        elif decision.mode == "hang":
            time.sleep(
                decision.delay_s if decision.delay_s is not None else 3600.0
            )
        elif decision.mode == "slow":
            time.sleep(
                decision.delay_s if decision.delay_s is not None else 0.05
            )
        elif decision.mode == "wrong_result":
            mangle = True
    points = shm.unpack_gpu_slab_request(header)
    with tele_span(
        "slab.evaluate", category="sweep", points=len(points)
    ):
        records = evaluate_gpu_slab(machine, points)
    response = shm.pack_gpu_slab_response(header["shm"], records)
    if mangle and response["nbytes"]:
        segment = shm.attach_segment(response["shm"])
        try:
            segment.buf[0] = segment.buf[0] ^ 0xFF
        finally:
            segment.close()
    return response


_TASKS = {
    "gpu_point": _task_gpu_point,
    "gpu_slab": _task_gpu_slab,
    "coexec_sweep": _task_coexec_sweep,
}


def _sweep_from_record(request: CoexecRequest, record: dict) -> CoExecSweep:
    """Rebuild a :class:`CoExecSweep` from its cached JSON record."""
    rtype = request.case.result_type
    measurements = tuple(
        CoExecMeasurement(
            case=request.case,
            site=request.site,
            config=request.config,
            cpu_part=m["cpu_part"],
            trials=request.trials,
            elapsed_seconds=m["elapsed_seconds"],
            bandwidth_gbs=m["bandwidth_gbs"],
            gpu_seconds_steady=m["gpu_seconds_steady"],
            cpu_seconds_steady=m["cpu_seconds_steady"],
            migration_seconds=m["migration_seconds"],
            value=rtype.numpy.type(m["value"]),
        )
        for m in record["measurements"]
    )
    return CoExecSweep(
        case=request.case,
        site=request.site,
        config=request.config,
        measurements=measurements,
    )


class SweepExecutor:
    """Runs sweep points for one machine: cache first, then pool, then serial.

    Parameters
    ----------
    machine:
        The simulated node measurements run against (worker processes
        rebuild an identical one from its spec).
    workers:
        Pool width; ``None`` resolves through ``REPRO_SWEEP_WORKERS`` and
        :attr:`ReproConfig.sweep_workers`, defaulting to 1 (serial, the
        seed behaviour).  ``"auto"`` or any value <= 0 means one worker
        per CPU.
    cache:
        A :class:`ResultCache`, or ``None`` to disable result caching
        (every point recomputes, exactly as before this subsystem).
    stats:
        Shared :class:`SweepStats`; created fresh when omitted.
    task_timeout_s:
        Per-task wall-clock budget; ``None`` resolves through
        ``REPRO_SWEEP_TIMEOUT`` and :attr:`ReproConfig.
        sweep_task_timeout_s`, defaulting to no deadline.  Setting one
        routes computation through the supervised pool (even with one
        worker), where a too-slow point becomes a failure record
        instead of aborting the sweep.
    """

    def __init__(
        self,
        machine: Machine,
        workers: "int | str | None" = None,
        cache: Optional[ResultCache] = None,
        stats: Optional[SweepStats] = None,
        task_timeout_s: "float | str | None" = None,
    ):
        self.machine = machine
        self.workers = resolve_workers(workers, machine.config)
        self.cache = cache
        self.task_timeout_s = resolve_task_timeout(
            task_timeout_s, machine.config
        )
        self._pool: Optional[Any] = None
        #: Traced-service override: keep the slab fast path even with
        #: telemetry enabled.  Distributed traces want the request tree
        #: (stage -> worker -> slab.evaluate), not per-point scalar
        #: spans, so the service sets this when sampling traces.
        self.trace_slab = False
        if stats is None:
            # When profiling, back the stage counters by the global
            # telemetry registry so they appear in exported traces.
            telemetry = get_telemetry()
            stats = SweepStats(
                registry=telemetry.registry if telemetry.enabled else None
            )
        self.stats = stats
        self.stats.mode = (
            "serial"
            if self.workers == 1 and self.task_timeout_s is None
            else f"processes({self.workers})"
        )
        self._machine_fp = fingerprint(machine_fingerprint_data(machine))
        # Payload -> key memo: fingerprinting re-canonicalizes the same
        # frozen payload objects on every run, and repeat sweeps over a
        # warm cache spend most of their time there.  Payloads are
        # frozen dataclasses / ints / None, hence hashable.
        self._key_memo: Dict[Any, str] = {}

    @property
    def machine_fingerprint(self) -> str:
        """The machine's cache fingerprint (scrape/build attribution)."""
        return self._machine_fp

    # -- cache keys -----------------------------------------------------------
    def cache_key(self, kind: str, payload: Any) -> str:
        try:
            key = self._key_memo.get((kind, payload))
        except TypeError:  # unhashable payload: compute without memo
            return self._fingerprint_key(kind, payload)
        if key is None:
            key = self._fingerprint_key(kind, payload)
            if len(self._key_memo) >= _MEMO_KEY_CAP:
                self._key_memo.clear()
            self._key_memo[(kind, payload)] = key
        return key

    def _fingerprint_key(self, kind: str, payload: Any) -> str:
        digest = fingerprint(
            {
                "version": CACHE_VERSION,
                "machine": self._machine_fp,
                "kind": kind,
                "payload": payload,
            }
        )
        return f"{kind}-{digest}"

    # -- execution ------------------------------------------------------------
    def run(self, kind: str, payloads: Sequence[tuple], stage: str) -> List[dict]:
        """Resolve every payload to its result record, in order."""
        payloads = list(payloads)
        if get_telemetry().enabled:
            with tele_span("sweep.stage", category="sweep", stage=stage,
                           kind=kind) as sp:
                return self._run_stage(kind, payloads, stage, sp)
        # Disabled-telemetry fast path: warm-cache sweeps resolve in a
        # few microseconds per point, where even a no-op span generator
        # is measurable.
        return self._run_stage(kind, payloads, stage, None)

    def run_streaming(
        self,
        kind: str,
        payloads: Iterable[tuple],
        stage: str,
        sink: Callable[[int, dict], None],
        chunk_size: int = DEFAULT_STREAM_CHUNK,
        checkpoint: Optional[Callable[[int], None]] = None,
        start_index: int = 0,
    ) -> int:
        """Resolve *payloads* lazily, handing each record to *sink* in order.

        The bounded-memory collation path: payloads are drawn from the
        iterable ``chunk_size`` at a time, each chunk resolves through
        the normal cache -> pool -> serial pipeline, and every record is
        passed to ``sink(index, record)`` — in strict submission order —
        then dropped, so the coordinator never holds more than one
        chunk of results regardless of sweep size.  ``checkpoint(done)``
        (when given) runs after each chunk's records have all been
        sunk, with the cumulative count resolved so far; raising from it
        aborts the run (the :mod:`repro.jobs` cancel path).  Indices
        start at ``start_index`` (a resumed job's first missing point).

        Returns the number of points resolved.
        """
        if chunk_size < 1:
            raise SpecError(f"chunk_size must be >= 1, got {chunk_size}")
        done = 0
        index = start_index
        iterator = iter(payloads)
        while True:
            chunk: List[tuple] = []
            for payload in iterator:
                chunk.append(payload)
                if len(chunk) >= chunk_size:
                    break
            if not chunk:
                break
            records = self.run(kind, chunk, stage)
            chunk.clear()
            for j, record in enumerate(records):
                sink(index + j, record)
                records[j] = None  # type: ignore[call-overload]
            index += len(records)
            done += len(records)
            del records
            if checkpoint is not None:
                checkpoint(done)
        return done

    def _run_stage(
        self, kind: str, payloads: List[tuple], stage: str, sp: Any
    ) -> List[dict]:
        # Hand-rolled equivalent of ``stats.timed(stage)``: the generator
        # contextmanager costs a few microseconds, which warm all-hit
        # stages actually notice.
        st = self.stats.stage(stage)
        started = time.perf_counter()
        try:
            results = self._resolve_stage(kind, payloads, st, sp)
        except BaseException:
            st.add_error()
            raise
        finally:
            st.add_wall(time.perf_counter() - started)
        return results

    def _resolve_stage(
        self, kind: str, payloads: List[tuple], st: Any, sp: Any
    ) -> List[dict]:
        st.add_points(len(payloads))
        results: List[Optional[dict]] = [None] * len(payloads)
        keys: List[Optional[str]] = [None] * len(payloads)
        misses: List[int] = []
        cache = self.cache
        if cache is not None:
            cache_key = self.cache_key
            cache_get = cache.get
            for i, payload in enumerate(payloads):
                key = cache_key(kind, payload)
                keys[i] = key
                hit = cache_get(key)
                if hit is None:
                    misses.append(i)
                else:
                    results[i] = hit
            st.add_cache_hits(len(payloads) - len(misses))
        else:
            misses = list(range(len(payloads)))
        if sp is not None:
            sp.set(points=len(payloads),
                   cache_hits=len(payloads) - len(misses))
        if misses:
            computed = self._compute(kind, [payloads[i] for i in misses])
            st.add_computed(len(misses))
            failed = 0
            for i, record in zip(misses, computed):
                results[i] = record
                if isinstance(record, dict) and record.get("failed"):
                    # Timed-out or quarantined point: visible in the
                    # stats and the record, but never cached — the
                    # next run gets a fresh attempt.
                    failed += 1
                    continue
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], record)
            if failed:
                st.add_failed(failed)
                if sp is not None:
                    sp.set(failed=failed)
        return results  # type: ignore[return-value]

    def _compute(self, kind: str, payloads: List[tuple]) -> List[dict]:
        # The slab path covers gpu_point stages without a per-task
        # deadline: a deadline is a per-*point* contract, and chunked
        # dispatch would coarsen it to per-chunk, so timed runs keep the
        # per-point pool.  Span-enabled (profiling) runs also keep the
        # scalar pipeline: its per-point compiler/openmp/gpu spans are
        # the observability contract, and a profiled run prefers trace
        # fidelity over throughput.
        slab = (
            kind == "gpu_point"
            and self.machine.config.slab
            and self.task_timeout_s is None
            and (not get_telemetry().enabled or self.trace_slab)
        )
        if self.task_timeout_s is None and (
            self.workers == 1 or len(payloads) < 2
        ):
            if slab:
                return self._compute_slab_serial(payloads)
            return self._compute_serial(kind, payloads)
        try:
            if slab:
                return self._compute_slab_pool(payloads)
            return self._compute_pool(kind, payloads)
        except Exception:
            # Pools can be unavailable (pickling limits, sandboxed
            # platforms, restricted /dev/shm) or exhaust their restart
            # budget; the serial path is always correct, just slower
            # and without crash isolation.
            self.stats.mode = "serial (pool unavailable)"
            self.close()
            if slab:
                return self._compute_slab_serial(payloads)
            return self._compute_serial(kind, payloads)

    def _compute_serial(self, kind: str, payloads: List[tuple]) -> List[dict]:
        task = _TASKS[kind]
        if not get_telemetry().enabled:
            return [task(self.machine, p) for p in payloads]
        results = []
        for payload in payloads:
            with tele_span("sweep.point", category="sweep", kind=kind):
                results.append(task(self.machine, payload))
        return results

    def _compute_slab_serial(self, payloads: List[tuple]) -> List[dict]:
        # Imported lazily: repro.sim.batch reaches repro.sweep through
        # the model tables' fingerprinting.
        from ..sim.batch import evaluate_gpu_slab

        if not get_telemetry().enabled:
            return evaluate_gpu_slab(self.machine, payloads)
        with tele_span(
            "sweep.slab", category="sweep", points=len(payloads)
        ):
            return evaluate_gpu_slab(self.machine, payloads)

    def _compute_slab_pool(self, payloads: List[tuple]) -> List[dict]:
        from ..faults.supervisor import failure_record
        from ..sim.batch import SLAB_POINT_BUCKETS, evaluate_gpu_slab
        from . import shm

        pool = self._ensure_pool()
        n = len(payloads)
        size = max(1, min(_SLAB_CHUNK_CAP, -(-n // self.workers)))
        chunks = [payloads[i : i + size] for i in range(0, n, size)]
        reg = metrics()
        headers = []
        try:
            for chunk in chunks:
                headers.append(shm.pack_gpu_slab_request(chunk))
                reg.counter("sweep.payload_bytes", transport="shm").add(
                    headers[-1]["nbytes"]
                )
                reg.histogram(
                    "slab.points_per_batch", boundaries=SLAB_POINT_BUCKETS
                ).observe(float(len(chunk)))
            records, spans = pool.run(
                "gpu_slab", [(header,) for header in headers]
            )
            self._ingest_spans(spans)
            out: List[dict] = []
            for chunk, record in zip(chunks, records):
                if record.get("failed"):
                    # The chunk is the task unit: a crashed/quarantined
                    # chunk degrades to explicit per-point failures.
                    message = record.get("error", "slab task failed")
                    attempts = record.get("attempts", 1)
                    out.extend(
                        failure_record("gpu_point", message, attempts)
                        for _ in chunk
                    )
                    continue
                try:
                    out.extend(shm.unpack_gpu_slab_response(record))
                    reg.counter(
                        "sweep.payload_bytes", transport="shm"
                    ).add(int(record["nbytes"]))
                except shm.TransportError:
                    # Detected corruption (or a reaped segment): never
                    # collate suspect bytes — recompute the chunk here.
                    reg.counter("slab.transport_errors").add(1)
                    out.extend(evaluate_gpu_slab(self.machine, chunk))
            return out
        finally:
            for header in headers:
                shm.release_segment(header["shm"])
                shm.release_segment(shm.response_name(header["shm"]))

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            # Imported lazily: repro.faults.supervisor itself imports
            # from repro.sweep, so a module-level import would cycle.
            from ..faults.supervisor import SupervisedWorkerPool

            self._pool = SupervisedWorkerPool(
                MachineSpec.of(self.machine),
                _TASKS,
                workers=self.workers,
                task_timeout_s=self.task_timeout_s,
            )
        return self._pool

    def _ingest_spans(self, spans: Any) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled and spans:
            # Adopt the workers' spans under the current stage span so
            # the exported timeline keeps one tree.
            telemetry.recorder.ingest(
                spans, parent_id=telemetry.recorder.current_id()
            )

    def _compute_pool(self, kind: str, payloads: List[tuple]) -> List[dict]:
        pool = self._ensure_pool()
        metrics().counter("sweep.payload_bytes", transport="pickle").add(
            sum(
                len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL))
                for p in payloads
            )
        )
        records, spans = pool.run(kind, payloads)
        self._ingest_spans(spans)
        return records

    def close(self) -> None:
        """Shut down the worker pool, if one was started (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- typed front doors ----------------------------------------------------
    def gpu_points(
        self,
        case: Case,
        configs: Sequence[Optional[KernelConfig]],
        trials: int = TRIALS,
        verify: Optional[bool] = False,
        stage: str = "gpu-sweep",
        op: str = "+",
    ) -> List[dict]:
        """Measure *case* at every config; returns the result records.

        ``config=None`` entries measure the baseline.  Each record has
        ``bandwidth_gbs``, ``elapsed_seconds`` and ``value``.  ``op``
        selects the reduction identifier; the default sum builds the
        historical 4-tuple payloads so existing cache entries keep their
        fingerprints.
        """
        payloads = [
            ((case, config, trials, verify) if op == "+"
             else (case, config, trials, verify, op))
            for config in configs
        ]
        return self.run("gpu_point", payloads, stage)

    def gpu_bandwidths(
        self,
        case: Case,
        configs: Sequence[Optional[KernelConfig]],
        trials: int = TRIALS,
        verify: Optional[bool] = False,
        stage: str = "gpu-sweep",
    ) -> List[float]:
        """Bandwidth-only convenience over :meth:`gpu_points`."""
        return [
            r["bandwidth_gbs"]
            for r in self.gpu_points(case, configs, trials, verify, stage)
        ]

    def coexec_sweeps(
        self,
        requests: Sequence[CoexecRequest],
        stage: str = "coexec",
    ) -> List[CoExecSweep]:
        """Run each co-execution request (p order stays serial inside each).

        Requests are independent of one another, so they parallelize
        across the pool even though the A1 residency story forces each
        request's own p grid to run in ascending order.
        """
        records = self.run(
            "coexec_sweep", [(request,) for request in requests], stage
        )
        return [
            _sweep_from_record(request, record)
            for request, record in zip(requests, records)
        ]
