"""Lightweight sweep instrumentation: stage wall-times and cache counters.

The executor records, per named stage (``table1``, ``fig1-C1``,
``coexec-A1-optimized`` ...), how long the stage took, how many parameter
points it covered, and how many were served from cache versus computed.
:meth:`SweepStats.render` produces the summary the report and the
reproduction driver print, so executor speedups are observable rather than
anecdotal.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from ..util.tables import AsciiTable

__all__ = ["StageStats", "SweepStats"]


@dataclass
class StageStats:
    """Counters for one named sweep stage."""

    name: str
    wall_seconds: float = 0.0
    points: int = 0
    cache_hits: int = 0
    computed: int = 0

    @property
    def points_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.points / self.wall_seconds


@dataclass
class SweepStats:
    """Per-stage instrumentation shared by one executor."""

    stages: Dict[str, StageStats] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    mode: str = "serial"

    def stage(self, name: str) -> StageStats:
        if name not in self.stages:
            self.stages[name] = StageStats(name=name)
            self.order.append(name)
        return self.stages[name]

    @contextmanager
    def timed(self, name: str) -> Iterator[StageStats]:
        """Time a ``with`` block against stage *name* (additive)."""
        st = self.stage(name)
        start = time.perf_counter()
        try:
            yield st
        finally:
            st.wall_seconds += time.perf_counter() - start

    # -- aggregates -----------------------------------------------------------
    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stages.values())

    @property
    def total_points(self) -> int:
        return sum(s.points for s in self.stages.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stages.values())

    @property
    def total_computed(self) -> int:
        return sum(s.computed for s in self.stages.values())

    def render(self) -> str:
        """ASCII summary table of every stage plus totals."""
        table = AsciiTable(
            ["stage", "wall s", "points", "hits", "computed", "points/s"]
        )
        rows = [self.stages[name] for name in self.order]
        for st in rows:
            table.add_row(
                [
                    st.name,
                    f"{st.wall_seconds:.3f}",
                    st.points,
                    st.cache_hits,
                    st.computed,
                    f"{st.points_per_second:.1f}",
                ]
            )
        table.add_row(
            [
                "TOTAL",
                f"{self.total_wall_seconds:.3f}",
                self.total_points,
                self.total_cache_hits,
                self.total_computed,
                (
                    f"{self.total_points / self.total_wall_seconds:.1f}"
                    if self.total_wall_seconds > 0
                    else "0.0"
                ),
            ]
        )
        header = f"sweep executor: mode={self.mode}"
        return header + "\n" + table.render()
