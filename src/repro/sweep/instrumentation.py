"""Sweep instrumentation: stage wall-times and counters, registry-backed.

The executor records, per named stage (``table1``, ``fig1-C1``,
``coexec-A1-optimized`` ...), how long the stage took, how many parameter
points it covered, how many were served from cache versus computed, and
how many raised.  The counters live in a
:class:`~repro.telemetry.metrics.MetricsRegistry` — by default a private
one per :class:`SweepStats` (so independent executors don't bleed into
each other), or the process-global telemetry registry when profiling is
on, which is how the stage counters end up in exported traces and
snapshots.  :meth:`SweepStats.render` produces the summary the report and
the reproduction driver print, so executor speedups are observable rather
than anecdotal.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..telemetry.metrics import MetricsRegistry
from ..util.tables import AsciiTable

__all__ = ["StageStats", "SweepStats"]


class StageStats:
    """Counters for one named sweep stage (views over registry counters)."""

    __slots__ = (
        "name", "_wall", "_points", "_hits", "_computed", "_errors", "_failed",
    )

    def __init__(self, name: str, registry: MetricsRegistry):
        self.name = name
        self._wall = registry.counter("sweep.stage.wall_seconds", stage=name)
        self._points = registry.counter("sweep.stage.points", stage=name)
        self._hits = registry.counter("sweep.stage.cache_hits", stage=name)
        self._computed = registry.counter("sweep.stage.computed", stage=name)
        self._errors = registry.counter("sweep.stage.errors", stage=name)
        self._failed = registry.counter("sweep.stage.failed", stage=name)

    # -- increments (the executor's write API) -------------------------------
    def add_wall(self, seconds: float) -> None:
        self._wall.add(seconds)

    def add_points(self, n: int = 1) -> None:
        self._points.add(n)

    def add_cache_hits(self, n: int = 1) -> None:
        self._hits.add(n)

    def add_computed(self, n: int = 1) -> None:
        self._computed.add(n)

    def add_error(self, n: int = 1) -> None:
        self._errors.add(n)

    def add_failed(self, n: int = 1) -> None:
        self._failed.add(n)

    # -- reads ----------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return float(self._wall.value)

    @property
    def points(self) -> int:
        return int(self._points.value)

    @property
    def cache_hits(self) -> int:
        return int(self._hits.value)

    @property
    def computed(self) -> int:
        return int(self._computed.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def points_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.points / self.wall_seconds


class SweepStats:
    """Per-stage instrumentation shared by one executor.

    Parameters
    ----------
    registry:
        Backing metrics registry.  ``None`` creates a private registry;
        pass :func:`repro.telemetry.metrics` (the global one) to surface
        stage counters in exported telemetry.
    """

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, mode: str = "serial"
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stages: Dict[str, StageStats] = {}
        self.order: List[str] = []
        self.mode = mode

    def stage(self, name: str) -> StageStats:
        if name not in self.stages:
            self.stages[name] = StageStats(name, self.registry)
            self.order.append(name)
        return self.stages[name]

    @contextmanager
    def timed(self, name: str) -> Iterator[StageStats]:
        """Time a ``with`` block against stage *name* (additive).

        Wall time accrues even when the block raises; an error is counted
        against the stage so the ``points``/``computed`` counters' desync
        is visible in :meth:`render` rather than silent.
        """
        st = self.stage(name)
        start = time.perf_counter()
        try:
            yield st
        except BaseException:
            st.add_error()
            raise
        finally:
            st.add_wall(time.perf_counter() - start)

    # -- aggregates -----------------------------------------------------------
    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stages.values())

    @property
    def total_points(self) -> int:
        return sum(s.points for s in self.stages.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stages.values())

    @property
    def total_computed(self) -> int:
        return sum(s.computed for s in self.stages.values())

    @property
    def total_errors(self) -> int:
        return sum(s.errors for s in self.stages.values())

    @property
    def total_failed(self) -> int:
        return sum(s.failed for s in self.stages.values())

    def render(self) -> str:
        """ASCII summary table of every stage plus totals.

        The ``failed`` column (points resolved to explicit failure
        records by the supervised pool — timeouts and quarantined
        poison tasks) only appears when something actually failed, so
        clean runs render byte-identically to earlier versions.
        """
        with_failed = self.total_failed > 0
        columns = ["stage", "wall s", "points", "hits", "computed", "errors"]
        if with_failed:
            columns.append("failed")
        table = AsciiTable(columns + ["points/s"])
        rows = [self.stages[name] for name in self.order]
        for st in rows:
            cells = [
                st.name,
                f"{st.wall_seconds:.3f}",
                st.points,
                st.cache_hits,
                st.computed,
                st.errors,
            ]
            if with_failed:
                cells.append(st.failed)
            table.add_row(cells + [f"{st.points_per_second:.1f}"])
        totals = [
            "TOTAL",
            f"{self.total_wall_seconds:.3f}",
            self.total_points,
            self.total_cache_hits,
            self.total_computed,
            self.total_errors,
        ]
        if with_failed:
            totals.append(self.total_failed)
        table.add_row(
            totals
            + [
                f"{self.total_points / self.total_wall_seconds:.1f}"
                if self.total_wall_seconds > 0
                else "0.0"
            ]
        )
        header = f"sweep executor: mode={self.mode}"
        return header + "\n" + table.render()
