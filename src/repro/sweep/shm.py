"""Zero-copy slab transport over ``multiprocessing.shared_memory``.

The pickle path serializes every sweep point's payload and result dict
through the worker pipe.  For slab dispatch the executor instead packs a
whole chunk of ``gpu_point`` payloads into one shared-memory segment of
typed int64 columns, sends only a tiny pickled *header* (segment name,
length, the distinct :class:`~repro.core.cases.Case` objects, and a
SHA-256 of the buffer), and the worker writes its result slab into a
second segment the coordinator collates from views.

Leak discipline — the classic failure mode of this transport is a stale
``/dev/shm`` segment surviving a crash:

* the **coordinator owns every segment's lifetime**: request segments it
  creates, and response segments whose names are *derived* from the
  request name (``<name>-out``), so a ``finally`` can unlink both even
  when the worker died mid-task, timed out, or the run was interrupted;
* every coordinator-created segment is recorded in a module registry
  with an ``atexit`` sweep, so ``KeyboardInterrupt`` and plain process
  exit also clean up;
* workers create response segments **untracked** (and unlink any
  leftover of the same name first, which self-heals a previous attempt's
  crash): a worker's ``resource_tracker`` must never reap a segment the
  coordinator has not collated yet, and on Python < 3.13 (no
  ``track=False``) attaching registers the segment with the tracker, so
  both attach and worker-side create explicitly unregister.

Integrity: both directions carry a SHA-256 of the exact buffer bytes in
the pickled header.  The header itself is covered by the supervisor's
record checksum, so corruption of either layer is detected, never
silently collated (the chaos invariant).
"""

from __future__ import annotations

import atexit
import hashlib
import secrets
import os
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "TransportError",
    "create_segment",
    "attach_segment",
    "unlink_if_exists",
    "release_segment",
    "owned_segments",
    "pack_gpu_slab_request",
    "unpack_gpu_slab_request",
    "pack_gpu_slab_response",
    "unpack_gpu_slab_response",
    "response_name",
]

#: Name prefix of every segment this module creates (leak tests scan it).
SEGMENT_PREFIX = "repro-slab-"

#: Request columns, in buffer order (all int64).  ``op`` carries the
#: reduction identifier as an index into :data:`_OP_CODES` — 0 (sum)
#: round-trips back to the historical 4-tuple payload shape.
_REQUEST_COLUMNS = ("case_idx", "teams", "v", "threads", "trials", "verify",
                    "op")

#: Transport-only encoding of reduction identifiers (never persisted —
#: cache fingerprints see the payload tuples, not this buffer layout).
_OP_CODES = ("+", "-", "*", "max", "min", "&", "|", "^", "&&", "||",
             "argmax", "dot")

#: Response columns, in buffer order (all 8-byte; dtype per column).
_RESPONSE_COLUMNS = (
    ("bandwidth_gbs", np.float64),
    ("elapsed_seconds", np.float64),
    ("value_int", np.int64),
    ("value_float", np.float64),
    ("value_is_float", np.int64),
)


class TransportError(RuntimeError):
    """A slab buffer failed validation (missing segment, bad digest)."""


# -- segment lifetime ------------------------------------------------------

_REGISTRY_LOCK = threading.Lock()
_OWNED: Dict[str, Optional[shared_memory.SharedMemory]] = {}


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Detach *segment* from this process's resource tracker.

    On Python < 3.13 there is no ``track=False`` and ``SharedMemory``
    registers with the tracker on both create *and* attach; a tracker
    unlinks everything it still knows about when its process dies —
    exactly wrong for segments another process owns or has yet to read.
    This module manages segment lifetime itself (registry + derived
    names + ``atexit``), so every create/attach is unregistered, except
    where ``unlink()`` itself sends the unregister.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _fresh_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"


def create_segment(
    nbytes: int, name: Optional[str] = None, owner: bool = True
) -> shared_memory.SharedMemory:
    """Create a segment; ``owner=True`` records it for the atexit sweep.

    ``owner=False`` is the worker side: the segment is untracked (the
    coordinator unlinks it by derived name) and any leftover of the same
    name from a crashed previous attempt is unlinked first.
    """
    if name is None:
        name = _fresh_name()
    elif not owner:
        unlink_if_exists(name)
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, nbytes)
    )
    _untrack(segment)
    if owner:
        with _REGISTRY_LOCK:
            _OWNED[segment.name] = segment
    return segment


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker ownership."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise TransportError(
            f"shared-memory segment {name!r} does not exist "
            "(worker died before writing, or it was reaped)"
        ) from None
    _untrack(segment)
    return segment


def unlink_if_exists(name: str) -> bool:
    """Unlink segment *name* if present; returns whether it existed.

    The attach registers with the resource tracker and ``unlink()``
    unregisters, so the pair balances; no manual untrack here.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        _untrack(segment)
        return False
    return True


def release_segment(name: str) -> None:
    """Close and unlink a coordinator-owned (or expected) segment."""
    with _REGISTRY_LOCK:
        segment = _OWNED.pop(name, None)
    if segment is not None:
        try:
            segment.close()
        except Exception:  # pragma: no cover - buffer already gone
            pass
    unlink_if_exists(name)


def expect_segment(name: str) -> None:
    """Register a name the coordinator must unlink (derived responses)."""
    with _REGISTRY_LOCK:
        _OWNED.setdefault(name, None)


def owned_segments() -> List[str]:
    """Names currently registered for cleanup (tests inspect this)."""
    with _REGISTRY_LOCK:
        return sorted(_OWNED)


@atexit.register
def _sweep_owned() -> None:  # pragma: no cover - exercised via subprocess
    """Last-resort cleanup on interpreter exit (incl. KeyboardInterrupt)."""
    with _REGISTRY_LOCK:
        leftovers = list(_OWNED.items())
        _OWNED.clear()
    for name, segment in leftovers:
        if segment is not None:
            try:
                segment.close()
            except Exception:
                pass
        unlink_if_exists(name)


# -- gpu_point slab packing ------------------------------------------------


def _digest(view: memoryview) -> str:
    return hashlib.sha256(view).hexdigest()


def response_name(request_name: str) -> str:
    """The derived response-segment name for a request segment."""
    return f"{request_name}-out"


def pack_gpu_slab_request(payloads: Sequence[tuple]) -> Dict[str, Any]:
    """Pack ``(case, config, trials, verify)`` payloads into a segment.

    Returns the pipe header: segment name, point count, the distinct
    ``Case`` objects (indexed by the ``case_idx`` column), and the
    buffer digest.  The caller owns the segment (release via
    :func:`release_segment`); the derived response name is registered
    for cleanup too.
    """
    n = len(payloads)
    cases: List[Any] = []
    case_index: Dict[Any, int] = {}
    columns = np.empty((len(_REQUEST_COLUMNS), n), dtype=np.int64)
    for i, payload in enumerate(payloads):
        case, config, trials, verify = payload[:4]
        op = payload[4] if len(payload) > 4 else "+"
        idx = case_index.get(case)
        if idx is None:
            idx = case_index[case] = len(cases)
            cases.append(case)
        columns[0, i] = idx
        if config is None:
            columns[1, i] = 0
            columns[2, i] = 0
            columns[3, i] = 0
        else:
            columns[1, i] = config.teams
            columns[2, i] = config.v
            columns[3, i] = config.threads
        columns[4, i] = trials
        columns[5, i] = -1 if verify is None else int(bool(verify))
        columns[6, i] = _OP_CODES.index(op)
    segment = create_segment(columns.nbytes)
    expect_segment(response_name(segment.name))
    view = np.ndarray(columns.shape, dtype=np.int64, buffer=segment.buf)
    view[:] = columns
    return {
        "shm": segment.name,
        "n": n,
        "cases": cases,
        "sha256": _digest(segment.buf[: columns.nbytes]),
        "nbytes": columns.nbytes,
    }


def unpack_gpu_slab_request(header: Dict[str, Any]) -> List[tuple]:
    """Rebuild the payload list from a request header (worker side)."""
    from ..core.optimized import KernelConfig

    n = int(header["n"])
    cases = header["cases"]
    segment = attach_segment(header["shm"])
    try:
        nbytes = int(header["nbytes"])
        if _digest(segment.buf[:nbytes]) != header["sha256"]:
            raise TransportError(
                f"slab request buffer {header['shm']!r} failed digest "
                "verification"
            )
        columns = np.ndarray(
            (len(_REQUEST_COLUMNS), n), dtype=np.int64, buffer=segment.buf
        ).copy()
    finally:
        segment.close()
    payloads: List[tuple] = []
    for i in range(n):
        case = cases[int(columns[0, i])]
        if columns[1, i] == 0:
            config = None
        else:
            config = KernelConfig(
                teams=int(columns[1, i]),
                v=int(columns[2, i]),
                threads=int(columns[3, i]),
            )
        flag = int(columns[5, i])
        verify = None if flag < 0 else bool(flag)
        op = _OP_CODES[int(columns[6, i])]
        base = (case, config, int(columns[4, i]), verify)
        payloads.append(base if op == "+" else base + (op,))
    return payloads


def pack_gpu_slab_response(
    request_name: str, records: Sequence[dict]
) -> Dict[str, Any]:
    """Pack result records into the derived response segment (worker side).

    The worker does not own the segment's lifetime — the coordinator
    unlinks it by derived name — so it is created untracked, healing any
    leftover from a crashed previous attempt of the same task.
    """
    n = len(records)
    columns = np.zeros((len(_RESPONSE_COLUMNS), n), dtype=np.float64)
    ints = np.zeros(n, dtype=np.int64)
    for i, record in enumerate(records):
        columns[0, i] = record["bandwidth_gbs"]
        columns[1, i] = record["elapsed_seconds"]
        value = record["value"]
        if isinstance(value, float):
            columns[3, i] = value
            columns[4, i] = 1.0
        else:
            ints[i] = value
    nbytes = columns.nbytes
    segment = create_segment(
        nbytes, name=response_name(request_name), owner=False
    )
    view = np.ndarray(columns.shape, dtype=np.float64, buffer=segment.buf)
    view[:] = columns
    view[2].view(np.int64)[:] = ints
    digest = _digest(segment.buf[:nbytes])
    segment.close()
    return {
        "shm": response_name(request_name),
        "n": n,
        "sha256": digest,
        "nbytes": nbytes,
    }


def unpack_gpu_slab_response(header: Dict[str, Any]) -> List[dict]:
    """Collate result records from a response header (coordinator side).

    Raises
    ------
    TransportError
        If the segment is missing or its bytes do not match the digest
        (detected corruption — the caller recomputes, never collates).
    """
    n = int(header["n"])
    segment = attach_segment(header["shm"])
    try:
        nbytes = int(header["nbytes"])
        if _digest(segment.buf[:nbytes]) != header["sha256"]:
            raise TransportError(
                f"slab response buffer {header['shm']!r} failed digest "
                "verification (corrupted in transport)"
            )
        columns = np.ndarray(
            (len(_RESPONSE_COLUMNS), n), dtype=np.float64, buffer=segment.buf
        ).copy()
    finally:
        segment.close()
    value_int = columns[2].view(np.int64)
    records: List[dict] = []
    for i in range(n):
        if columns[4, i]:
            value: Any = float(columns[3, i])
        else:
            value = int(value_int[i])
        records.append(
            {
                "bandwidth_gbs": float(columns[0, i]),
                "elapsed_seconds": float(columns[1, i]),
                "value": value,
            }
        )
    return records
