"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Version tuple for programmatic comparison, e.g. ``VERSION >= (1, 0)``.
VERSION = tuple(int(part) for part in __version__.split("."))
