"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works on minimal
offline environments whose setuptools lacks the `wheel` package needed for
PEP 660 editable wheels (legacy `setup.py develop` path).
"""

from setuptools import setup

setup()
